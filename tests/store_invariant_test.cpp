// Randomised cross-layer invariant harness for the aggregate store.
//
// A seeded op sequence (create / write / read / sync / drop / unlink over
// several striped files, through a small fuselite mount that forces
// eviction and write-back) runs against a byte-exact shadow model.  After
// every operation the harness asserts that the layers never disagree:
// manager location maps vs benefactor stored-chunk sets, reservation
// accounting vs placement, chunk refcounts, and cache residency vs shard
// occupancy.  Reads must always return exactly the shadow bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "fuselite/mount.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"
#include "stress_env.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int64_t kMs = 1'000'000;  // virtual ns per millisecond
constexpr uint64_t kCacheChunks = 8;
constexpr int kBenefactors = 4;
constexpr size_t kMaxFiles = 4;
constexpr uint32_t kMaxFileChunks = 6;

struct Harness {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;
  std::unique_ptr<fuselite::MountPoint> mount;
  // Shadow model: the exact bytes every live file must read back.
  std::map<std::string, std::vector<uint8_t>> shadow;
  // While bit rot is armed, a stored replica may legitimately disagree
  // with the manager's authoritative checksum until a read or scrub finds
  // it; the checksum invariant is suspended until the rot is disarmed and
  // the scrub has converged.
  bool expect_clean_checksums = true;

  // One benefactor per node; erasure sequences pass a wider store so an
  // RS(4,2) stripe has six distinct failure domains plus repair spares.
  int nbens = kBenefactors;

  explicit Harness(int replication, bool batch_write_rpc = true,
                   bool maintenance = false,
                   std::function<void(store::StoreConfig&)> tweak = {},
                   int benefactors = kBenefactors) {
    nbens = benefactors;
    net::ClusterConfig cc;
    cc.num_nodes = nbens + 1;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = replication;
    sc.store.batch_write_rpc = batch_write_rpc;
    if (maintenance) {
      sc.store.maintenance = true;
      sc.store.heartbeat_period_ms = 1;
      sc.store.heartbeat_misses = 3;
      sc.store.scrub_period_ms = 20;
    }
    if (tweak) tweak(sc.store);
    for (int b = 0; b < nbens; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    fuselite::FuseliteConfig fc;
    fc.cache_bytes = kCacheChunks * kChunk;  // far below the working set
    mount = std::make_unique<fuselite::MountPoint>(*store, /*node=*/0, fc);
    sim::CurrentClock().Reset();
  }

  // Drain the maintenance service past the failure-detection horizon so
  // mid-repair transients (stripped replica lists, in-flight copies) have
  // settled before an invariant sweep.  A converged store must satisfy
  // the same invariants as one that never failed.
  void QuiesceMaintenance() {
    store::MaintenanceService* ms = store->maintenance();
    if (ms == nullptr) return;
    ms->RunUntil(ms->now_ns() + 5 * kMs);
    ASSERT_TRUE(ms->QueueEmpty());
  }

  // Cold-restart the manager mid-sequence: tear down the mount (its
  // client stub dies with the manager), kill, recover from the WAL, and
  // remount.  With no crash armed the log is complete, so recovery must
  // be lossless — the sequence then continues against the fresh manager
  // under the same invariants.
  void RestartManager() {
    mount.reset();
    store->KillManager();
    const store::RecoveryReport report =
        store->RestartManager(sim::CurrentClock());
    EXPECT_EQ(report.chunks_lost, 0u);
    EXPECT_GT(report.records_replayed + report.files_recovered, 0u);
    fuselite::FuseliteConfig fc;
    fc.cache_bytes = kCacheChunks * kChunk;
    mount = std::make_unique<fuselite::MountPoint>(*store, /*node=*/0, fc);
  }

  // The invariant sweep: every view of "which chunks exist where" must
  // agree after every operation.
  void CheckInvariants(int replication) {
    auto& clock = sim::CurrentClock();

    // 1. Cache self-consistency: the residency counter, the per-shard
    //    occupancy, and the capacity bound always agree.
    auto& cache = mount->cache();
    const auto occ = cache.ShardOccupancy();
    size_t occupied = 0;
    for (size_t n : occ) occupied += n;
    ASSERT_EQ(occupied, cache.resident_chunks());
    ASSERT_LE(occupied, kCacheChunks);

    // Union of every live file's location map: chunk key -> replicas.
    // Erasure mode swaps the per-chunk shape: k+m positional fragments of
    // chunk_bytes/k each instead of `replication` full copies.
    const store::StoreConfig& cfg = store->manager().config();
    const bool ec = cfg.ec();
    const size_t want_members =
        ec ? static_cast<size_t>(cfg.ec_fragments())
           : static_cast<size_t>(replication);
    const uint64_t member_bytes = ec ? cfg.ec_frag_bytes() : kChunk;
    std::map<std::string, std::set<int>> placed;  // key string -> benefactors
    std::vector<uint64_t> expected_reserved(static_cast<size_t>(nbens), 0);
    for (const auto& [name, bytes] : shadow) {
      auto f = mount->Open(name);
      ASSERT_TRUE(f.ok());
      auto info = f->Stat();
      ASSERT_TRUE(info.ok());
      const auto want_chunks =
          static_cast<uint32_t>((bytes.size() + kChunk - 1) / kChunk);
      ASSERT_EQ(info->num_chunks, want_chunks) << name;

      auto locs = store->manager().GetReadLocations(clock, info->id, 0,
                                                    want_chunks);
      ASSERT_TRUE(locs.ok());
      ASSERT_EQ(locs->size(), want_chunks) << name;
      for (const store::ReadLocation& loc : *locs) {
        // 2. Placement sanity: exactly `replication` distinct, valid
        //    benefactors per chunk (erasure: exactly k+m, positional, no
        //    holes after quiesce — the sequences below only run hole-free
        //    combinations), and a live refcount.
        ASSERT_EQ(loc.ec, ec);
        ASSERT_EQ(loc.benefactors.size(), want_members);
        std::set<int> distinct(loc.benefactors.begin(), loc.benefactors.end());
        ASSERT_EQ(distinct.size(), loc.benefactors.size());
        for (int b : loc.benefactors) {
          ASSERT_GE(b, 0) << "hole in " << loc.key.ToString();
          ASSERT_LT(b, nbens);
          ++expected_reserved[static_cast<size_t>(b)];
        }
        ASSERT_GE(store->manager().ChunkRefcount(loc.key), 1u);
        // 5. Checksum agreement: whenever the manager holds an
        //    authoritative flush-time checksum for a chunk, every stored
        //    replica's bytes must hash to exactly that value.  (Sparse
        //    replicas — reserved but never flushed — store nothing; dead
        //    benefactors hold unreachable pre-death bytes that missed
        //    later degraded writes; both are exempt.)
        //    (Erasure stripes carry the authority per FRAGMENT, not per
        //    replica — the full-image checksum never matches any one
        //    stored fragment, so the scrub owns that agreement there.)
        uint32_t want_crc = 0;
        if (!ec && expect_clean_checksums &&
            store->manager().config().integrity() &&
            store->manager().LookupChecksum(loc.key, &want_crc)) {
          for (int b : loc.benefactors) {
            uint32_t stored_crc = 0;
            if (store->benefactor(static_cast<size_t>(b)).alive() &&
                store->benefactor(static_cast<size_t>(b))
                    .StoredContentCrc(loc.key, &stored_crc)) {
              ASSERT_EQ(stored_crc, want_crc)
                  << "benefactor " << b << " stores divergent bytes for "
                  << loc.key.ToString();
            }
          }
        }
        auto& entry = placed[loc.key.ToString()];
        entry.insert(loc.benefactors.begin(), loc.benefactors.end());
      }
    }

    for (int b = 0; b < nbens; ++b) {
      store::Benefactor& ben = store->benefactor(static_cast<size_t>(b));
      // 3. Space accounting: reservations equal the members the manager
      //    has placed here — no leaks, no double counting.
      ASSERT_EQ(ben.bytes_used(),
                expected_reserved[static_cast<size_t>(b)] * member_bytes)
          << "benefactor " << b;
      // 4. No orphans: every chunk a benefactor stores is a chunk some
      //    live file's location map names on this very benefactor.
      //    (The reverse need not hold: reserved-but-never-flushed chunks
      //    are sparse and stored nowhere.)
      for (const store::ChunkKey& key : ben.StoredChunkKeys()) {
        auto it = placed.find(key.ToString());
        ASSERT_NE(it, placed.end())
            << "benefactor " << b << " stores orphan " << key.ToString();
        ASSERT_TRUE(it->second.contains(b))
            << "benefactor " << b << " stores " << key.ToString()
            << " but is not in its replica list";
      }
    }
  }

  std::string NameFor(uint64_t i) { return "/f" + std::to_string(i % 100); }
};

// Options beyond the op dice: flip the batched write-back knob off (the
// per-chunk legacy path must uphold the same invariants) or inject a
// benefactor death partway through the sequence (kill_after_writes > 0:
// one benefactor dies after that many more chunk writes, so the sequence
// continues across degraded write-backs and replica failover).
struct SequenceOptions {
  bool batch_write_rpc = true;
  uint64_t kill_after_writes = 0;
  // Run the background maintenance service: after every op the harness
  // quiesces it, so the invariants assert that background repair lands the
  // store back in a fully-replicated, drift-free state.
  bool maintenance = false;
  // Arm seeded recurring bit rot on benefactor 1: every `bitrot_period`-th
  // chunk write landing there flips one random stored bit afterwards.
  // Requires maintenance (quarantined replicas must be re-replicated for
  // the placement invariant to hold after quiesce).
  uint64_t bitrot_period = 0;
  uint64_t bitrot_seed = 0;
  // Kill and cold-restart the manager after this many ops (0 = never).
  // Requires the WAL (tweak wal = true): the restarted manager rebuilds
  // its whole metadata plane from the durable log + benefactor
  // inventories, and the sequence keeps running against it.
  uint64_t kill_manager_after_ops = 0;
  // Extra config knobs for the run (e.g. a scrub verify budget large
  // enough that one pass covers the whole working set).
  std::function<void(store::StoreConfig&)> tweak;
  // Store width: erasure sequences need k+m distinct failure domains plus
  // spares for repair targets.
  int benefactors = kBenefactors;
  // Runs after the op loop (before the empty-store teardown) — extra
  // store-level assertions, e.g. per-tenant QoS accounting.
  std::function<void(Harness&)> post_check;
};

void RunSequence(uint64_t seed, int replication, int ops,
                 const SequenceOptions& so = {}) {
  ops = StressIters(ops);  // nightly tier runs the same seeds 10x deeper
  Harness h(replication, so.batch_write_rpc, so.maintenance, so.tweak,
            so.benefactors);
  if (so.kill_after_writes > 0) {
    h.store->benefactor(2).KillAfterWrites(so.kill_after_writes);
  }
  if (so.bitrot_period > 0) {
    h.store->benefactor(1).CorruptAfterWrites(so.bitrot_period,
                                              so.bitrot_seed);
    h.expect_clean_checksums = false;
  }
  Xoshiro256 rng(seed);
  uint64_t next_name = 0;

  auto pick_file = [&]() -> std::string {
    if (h.shadow.empty()) return {};
    auto it = h.shadow.begin();
    std::advance(it, static_cast<long>(rng.NextBelow(h.shadow.size())));
    return it->first;
  };

  for (int op = 0; op < ops; ++op) {
    if (so.kill_manager_after_ops > 0 &&
        op == static_cast<int>(so.kill_manager_after_ops)) {
      // Flush every file first: dirty cache pages are client-side state
      // and die with the mount, so the restart boundary is a sync point.
      for (const auto& [name, bytes] : h.shadow) {
        auto f = h.mount->Open(name);
        ASSERT_TRUE(f.ok()) << name;
        ASSERT_TRUE(f->Sync().ok()) << name;
      }
      ASSERT_NO_FATAL_FAILURE(h.RestartManager()) << "op " << op;
      ASSERT_NO_FATAL_FAILURE(h.CheckInvariants(replication)) << "op " << op;
    }
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 15 || h.shadow.empty()) {
      // Create (bounded number of live files).
      if (h.shadow.size() < kMaxFiles) {
        const std::string name = "/f" + std::to_string(next_name++);
        const uint64_t chunks = 1 + rng.NextBelow(kMaxFileChunks);
        auto f = h.mount->Create(name, chunks * kChunk);
        ASSERT_TRUE(f.ok()) << name;
        h.shadow[name] = std::vector<uint8_t>(chunks * kChunk, 0);
      }
    } else if (dice < 45) {
      // Write a random range (arbitrary alignment: exercises partial-page
      // read-modify-write and the batched fetch path underneath).
      const std::string name = pick_file();
      auto f = h.mount->Open(name);
      ASSERT_TRUE(f.ok());
      auto& bytes = h.shadow[name];
      const uint64_t off = rng.NextBelow(bytes.size());
      const uint64_t len = 1 + rng.NextBelow(
                                   std::min<uint64_t>(bytes.size() - off,
                                                      3 * kChunk));
      std::vector<uint8_t> buf(len);
      for (auto& v : buf) v = static_cast<uint8_t>(rng.Next());
      ASSERT_TRUE(f->Write(off, buf).ok());
      std::copy(buf.begin(), buf.end(),
                bytes.begin() + static_cast<int64_t>(off));
    } else if (dice < 75) {
      // Read a random range and demand exactly the shadow bytes.
      const std::string name = pick_file();
      auto f = h.mount->Open(name);
      ASSERT_TRUE(f.ok());
      auto& bytes = h.shadow[name];
      const uint64_t off = rng.NextBelow(bytes.size());
      const uint64_t len =
          1 + rng.NextBelow(std::min<uint64_t>(bytes.size() - off, 4 * kChunk));
      std::vector<uint8_t> got(len);
      ASSERT_TRUE(f->Read(off, got).ok());
      ASSERT_EQ(0, std::memcmp(got.data(),
                               bytes.data() + static_cast<int64_t>(off), len))
          << name << " off=" << off << " len=" << len << " op=" << op;
    } else if (dice < 85) {
      const std::string name = pick_file();
      auto f = h.mount->Open(name);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(f->Sync().ok());
    } else if (dice < 93) {
      // Flush + discard all cached state of one file; the store copy must
      // carry the bytes from here on.
      const std::string name = pick_file();
      auto f = h.mount->Open(name);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(h.mount->cache().Drop(sim::CurrentClock(), f->id()).ok());
    } else {
      // Free: unlink the file entirely.
      const std::string name = pick_file();
      ASSERT_TRUE(h.mount->Unlink(name).ok());
      h.shadow.erase(name);
    }
    ASSERT_NO_FATAL_FAILURE(h.QuiesceMaintenance()) << "op " << op;
    ASSERT_NO_FATAL_FAILURE(h.CheckInvariants(replication)) << "op " << op;
  }

  if (so.bitrot_period > 0) {
    // Disarm the rot, then let the checksum scrub sweep the whole store a
    // couple of times: every flip still hiding in a stored replica must be
    // found, quarantined, and healed, after which the FULL invariant set —
    // including checksum agreement on every replica — holds again.
    h.store->benefactor(1).CorruptAfterWrites(0, 0);
    store::MaintenanceService& ms = *h.store->maintenance();
    ms.RunUntil(ms.now_ns() + 60 * kMs);  // ≥ two 20 ms scrub periods
    ASSERT_TRUE(ms.QueueEmpty());
    h.expect_clean_checksums = true;
    ASSERT_NO_FATAL_FAILURE(h.CheckInvariants(replication));
    EXPECT_GT(h.store->benefactor(1).bitrot_flips(), 0u);  // rot really ran
    EXPECT_GT(h.store->maintenance()->stats().corrupt_chunks_detected, 0u);
    EXPECT_EQ(h.store->manager().lost_chunks(), 0u);
  }

  if (so.post_check) {
    ASSERT_NO_FATAL_FAILURE(so.post_check(h));
  }

  // Teardown: freeing everything must return the store to empty — no
  // leaked reservations, no orphaned chunks, no stale cache slots.
  while (!h.shadow.empty()) {
    ASSERT_TRUE(h.mount->Unlink(h.shadow.begin()->first).ok());
    h.shadow.erase(h.shadow.begin());
  }
  ASSERT_NO_FATAL_FAILURE(h.QuiesceMaintenance());
  ASSERT_NO_FATAL_FAILURE(h.CheckInvariants(replication));
  for (int b = 0; b < h.nbens; ++b) {
    EXPECT_EQ(h.store->benefactor(static_cast<size_t>(b)).num_chunks(), 0u);
    EXPECT_EQ(h.store->benefactor(static_cast<size_t>(b)).bytes_used(), 0u);
  }
  EXPECT_EQ(h.mount->cache().resident_chunks(), 0u);

  if (so.maintenance && so.kill_after_writes > 0) {
    // The background service — not any manual repair call — must have
    // detected the death and healed everything the victim held.
    const store::MaintenanceStats ms = h.store->maintenance()->stats();
    EXPECT_GT(ms.benefactors_declared_dead, 0u);
    EXPECT_EQ(ms.lost_chunks, 0u);
    // A manager restart replaces the service and zeroes its counters: the
    // restarted detector re-declares the still-dead benefactor, but the
    // healing usually happened before the crash, so only the no-restart
    // runs can insist the visible counter moved.
    if (so.kill_manager_after_ops == 0) {
      EXPECT_GT(ms.replicas_recreated, 0u);
    }
  }
}

TEST(StoreInvariantTest, RandomOpsKeepLayersConsistent) {
  RunSequence(/*seed=*/1, /*replication=*/1, /*ops=*/160);
}

TEST(StoreInvariantTest, RandomOpsKeepLayersConsistentSecondSeed) {
  RunSequence(/*seed=*/0xfeedbeef, /*replication=*/1, /*ops=*/160);
}

TEST(StoreInvariantTest, RandomOpsKeepLayersConsistentWithReplication) {
  RunSequence(/*seed=*/7, /*replication=*/2, /*ops=*/120);
}

TEST(StoreInvariantTest, RandomOpsKeepLayersConsistentUnbatchedWriteback) {
  SequenceOptions so;
  so.batch_write_rpc = false;
  RunSequence(/*seed=*/3, /*replication=*/1, /*ops=*/120, so);
}

TEST(StoreInvariantTest, ReplicatedSequenceSurvivesMidRunBenefactorDeath) {
  // A benefactor dies partway through the sequence, mid write-back run.
  // With replication 2 every later flush is a degraded success, reads fail
  // over to the surviving replica, and all cross-layer invariants — space
  // accounting, placement, orphans, shadow bytes — must keep holding
  // through and after the death.
  SequenceOptions so;
  so.kill_after_writes = 10;
  RunSequence(/*seed=*/11, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, ScrubHealsSeededBitRotToChecksumCleanState) {
  // One benefactor silently flips a stored bit every few writes that land
  // there.  Throughout the sequence every read must still return exactly
  // the shadow bytes (verifying reads catch the rot, fail over to the
  // clean replica, and quarantine the bad copy), and after the rot is
  // disarmed the checksum scrub must converge the store back to fully
  // replicated, checksum-clean state with zero lost chunks.
  SequenceOptions so;
  so.maintenance = true;
  so.bitrot_period = 6;
  so.bitrot_seed = 0x5eed;
  so.tweak = [](store::StoreConfig& s) { s.scrub_verify_bytes = 64_MiB; };
  RunSequence(/*seed=*/17, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, RandomOpsKeepLayersConsistentShardedMetadata) {
  // Same invariant sweep with the manager metadata plane split over four
  // shards: every cross-layer view (location maps, refcounts, reservation
  // accounting, checksums) must hold exactly as it does with one shard.
  SequenceOptions so;
  so.tweak = [](store::StoreConfig& s) { s.meta_shards = 4; };
  RunSequence(/*seed=*/1, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, ShardedMaintenanceConvergesKilledSequence) {
  // Mid-sequence benefactor death with background maintenance AND four
  // metadata shards: repair fences, target registries, and epochs span
  // shards while the service converges after every op.
  SequenceOptions so;
  so.kill_after_writes = 10;
  so.maintenance = true;
  so.tweak = [](store::StoreConfig& s) { s.meta_shards = 4; };
  RunSequence(/*seed=*/13, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, ColdManagerRestartMidSequenceIsLossless) {
  // The manager is killed and cold-restarted halfway through the
  // sequence (single metadata shard).  Recovery rebuilds the namespace,
  // placements, checksums and reservations from the WAL + benefactor
  // inventories, and every cross-layer invariant must keep holding for
  // the rest of the run — including the empty-store teardown.
  SequenceOptions so;
  so.kill_manager_after_ops = 60;
  so.tweak = [](store::StoreConfig& s) { s.wal = true; };
  RunSequence(/*seed=*/19, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, ColdManagerRestartMidSequenceShardedMetadata) {
  // Same mid-sequence cold restart with the metadata plane split over
  // four shards: the checkpoint/replay path must reassemble state across
  // shards exactly as it does with one.
  SequenceOptions so;
  so.kill_manager_after_ops = 60;
  so.tweak = [](store::StoreConfig& s) {
    s.wal = true;
    s.meta_shards = 4;
  };
  RunSequence(/*seed=*/23, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, RestartUnderMaintenanceLoadIsLossless) {
  // Restart under load: the background service (heartbeat sweeps, a real
  // benefactor death healed by repair, periodic scrubs) is live across a
  // mid-sequence manager kill + WAL recovery.  Every invariant — exact
  // replication, reservation accounting, shadow bytes — must keep
  // holding through the restart and to the empty-store teardown.
  SequenceOptions so;
  so.maintenance = true;
  so.kill_after_writes = 10;
  so.kill_manager_after_ops = 60;
  so.tweak = [](store::StoreConfig& s) { s.wal = true; };
  RunSequence(/*seed=*/29, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, RestartUnderMaintenanceLoadIsLosslessSecondSeed) {
  // Second seeded schedule, with the benefactor death landing later and
  // the metadata plane split over four shards.
  SequenceOptions so;
  so.maintenance = true;
  so.kill_after_writes = 25;
  so.kill_manager_after_ops = 40;
  so.tweak = [](store::StoreConfig& s) {
    s.wal = true;
    s.meta_shards = 4;
  };
  RunSequence(/*seed=*/0xabba, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, ManagerRestartMidRepairStormConverges) {
  // The manager dies in the MIDDLE of a repair storm over a declared
  // benefactor death, with every engine stage in flight at the crash
  // point: plans whose reserved targets will never see a copy, plans
  // whose copies landed but will never commit (orphaned bytes on the
  // targets), and plans already committed.  Heartbeat and scrub loops
  // are live when the plug is pulled.  Cold recovery plus the restarted
  // service must converge to a fully replicated, drift-free store: no
  // chunk double-repaired (exact replica sets), no reservation leaked or
  // double-counted (exact space accounting), no byte lost.
  Harness h(/*replication=*/2, /*batch_write_rpc=*/true, /*maintenance=*/true,
            [](store::StoreConfig& s) {
              s.wal = true;
              s.meta_shards = 4;
              s.scrub_verify_bytes = 64_MiB;
            });
  Xoshiro256 rng(0x57012);
  for (int f = 0; f < 4; ++f) {
    const std::string name = "/storm" + std::to_string(f);
    auto file = h.mount->Create(name, 6 * kChunk);
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> bytes(6 * kChunk);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.Next());
    ASSERT_TRUE(file->Write(0, bytes).ok());
    ASSERT_TRUE(file->Sync().ok());
    h.shadow[name] = std::move(bytes);
  }

  store::MaintenanceService* ms = h.store->maintenance();
  ms->RunUntil(ms->now_ns() + 5 * kMs);  // heartbeat + scrub loops live
  h.store->benefactor(2).Kill();
  h.store->manager().MarkDead(2);

  // Drive the repair engine to the mid-storm point by hand (the
  // background worker always drains its whole queue before yielding, so
  // a part-drained queue can only be frozen this way): a third of the
  // plans stay reserved-only, a third copy but never commit, a third
  // complete.
  sim::VirtualClock clock(sim::CurrentClock().now());
  auto keys = h.store->manager().CollectUnderReplicated();
  ASSERT_GE(keys.size(), 3u);
  uint64_t lost = 0;
  auto plans = h.store->manager().PlanRepairs(clock, keys, &lost);
  ASSERT_EQ(lost, 0u);
  ASSERT_EQ(plans.size(), keys.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (i % 3 == 0) continue;  // reserved, never executed
    auto outcome = h.store->manager().ExecuteRepairPlan(clock, plans[i]);
    if (i % 3 == 1) continue;  // copied, never committed
    h.store->manager().CommitRepair(clock, outcome, nullptr);
  }
  ASSERT_NO_FATAL_FAILURE(h.RestartManager());

  // The restarted service re-detects the still-dead benefactor, re-runs
  // the storm to completion, and its scrub reclaims whatever the aborted
  // plans left behind (orphaned target copies, reservation drift).
  store::MaintenanceService* ms2 = h.store->maintenance();
  const int64_t deadline = ms2->now_ns() + 2'000 * kMs;
  while (!(ms2->stats().benefactors_declared_dead > 0 && ms2->QueueEmpty() &&
           ms2->stats().scrub_passes > 2) &&
         ms2->now_ns() < deadline) {
    ms2->RunUntil(ms2->now_ns() + 20 * kMs);
  }
  ASSERT_GT(ms2->stats().benefactors_declared_dead, 0u);
  ASSERT_TRUE(ms2->QueueEmpty());
  ASSERT_NO_FATAL_FAILURE(h.CheckInvariants(/*replication=*/2));
  for (const auto& [name, bytes] : h.shadow) {
    auto file = h.mount->Open(name);
    ASSERT_TRUE(file.ok());
    std::vector<uint8_t> got(bytes.size());
    ASSERT_TRUE(file->Read(0, got).ok());
    ASSERT_EQ(got, bytes) << name;
  }

  // Teardown to empty: every release must be backed by a still-standing
  // reservation, on survivors and the dead benefactor alike.
  while (!h.shadow.empty()) {
    ASSERT_TRUE(h.mount->Unlink(h.shadow.begin()->first).ok());
    h.shadow.erase(h.shadow.begin());
  }
  ms2->RunUntil(ms2->now_ns() + 50 * kMs);
  ASSERT_TRUE(ms2->QueueEmpty());
  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(h.store->benefactor(static_cast<size_t>(b)).bytes_used(), 0u)
        << "benefactor " << b;
  }
}

TEST(StoreInvariantTest, QosRestartUnderLoadKeepsInvariantsAndAccounting) {
  // Restart under load with the QoS scheduler arbitrating: the foreground
  // tenant and the maintenance tenant (healing a real mid-sequence
  // benefactor death) race through a manager kill + WAL recovery.  Every
  // cross-layer invariant must keep holding, and because the scheduler
  // lives with the devices — not the manager — per-tenant accounting must
  // survive the restart and show both tenants' traffic.
  SequenceOptions so;
  so.maintenance = true;
  so.kill_after_writes = 10;
  so.kill_manager_after_ops = 60;
  so.tweak = [](store::StoreConfig& s) {
    s.wal = true;
    s.qos = true;
    s.qos_tenants = {{store::kTenantForeground, 2.0, 0.6, 2}};
  };
  so.post_check = [](Harness& h) {
    const store::QosStats qs = h.store->qos().Snapshot();
    bool fg = false, maint = false;
    for (const auto& t : qs.tenants) {
      if (t.id == store::kTenantForeground) {
        fg = t.admitted > 0 && t.reads + t.writes > 0;
      }
      if (t.id == store::kTenantMaintenance) maint = t.admitted > 0;
    }
    EXPECT_TRUE(fg) << "foreground traffic unaccounted";
    EXPECT_TRUE(maint) << "maintenance repair traffic unaccounted";
  };
  RunSequence(/*seed=*/31, /*replication=*/2, /*ops=*/120, so);
}

TEST(StoreInvariantTest, QosRestartUnderLoadShardedMetadata) {
  // Second seeded schedule: QoS on over a four-shard metadata plane, with
  // the benefactor death landing later relative to the manager kill.
  SequenceOptions so;
  so.maintenance = true;
  so.kill_after_writes = 25;
  so.kill_manager_after_ops = 40;
  so.tweak = [](store::StoreConfig& s) {
    s.wal = true;
    s.meta_shards = 4;
    s.qos = true;
    s.qos_tenants = {{store::kTenantForeground, 2.0, 0.6, 2},
                     {store::kTenantMaintenance, 1.0, 0.25, 0}};
  };
  RunSequence(/*seed=*/0xabba, /*replication=*/2, /*ops=*/120, so);
}

// Shared knob set for the erasure sequences: RS(4,2) over eight
// single-benefactor nodes (six distinct failure domains for a stripe,
// two spares for repair targets).
SequenceOptions ErasureOptions() {
  SequenceOptions so;
  so.benefactors = 8;
  so.tweak = [](store::StoreConfig& s) {
    s.redundancy = store::RedundancyMode::kErasure;
    s.ec_k = 4;
    s.ec_m = 2;
  };
  return so;
}

TEST(StoreInvariantTest, RandomOpsKeepLayersConsistentErasure) {
  // The full randomized sequence with every chunk an RS(4,2) stripe: the
  // same cross-layer sweep, reshaped — exactly k+m distinct positional
  // fragments per chunk, fragment-sized reservation accounting, no
  // orphaned fragments, byte-exact reads through the mount (partial
  // writes exercise the read-merge-encode path underneath).
  RunSequence(/*seed=*/1, /*replication=*/1, /*ops=*/120, ErasureOptions());
}

TEST(StoreInvariantTest, ErasureSequenceSurvivesMidRunBenefactorDeath) {
  // A fragment holder dies mid-sequence.  Later full-stripe writes land
  // degraded (a hole at the dead position), reads reconstruct through
  // the parity fragments, and after every op the background repair must
  // have re-encoded the missing fragments onto the spare benefactors —
  // the sweep demands hole-free k+m stripes every time.
  SequenceOptions so = ErasureOptions();
  so.kill_after_writes = 10;
  so.maintenance = true;
  RunSequence(/*seed=*/11, /*replication=*/1, /*ops=*/100, so);
}

TEST(StoreInvariantTest, ColdManagerRestartMidSequenceErasure) {
  // Cold manager restart halfway through an erasure sequence: the WAL's
  // redundancy-mode records, per-fragment completion checksums and the
  // checkpoint's fragment maps must rebuild the stripe state exactly —
  // the sequence keeps running under the same hole-free invariants.
  SequenceOptions so = ErasureOptions();
  so.kill_manager_after_ops = 50;
  const auto ec_tweak = so.tweak;
  so.tweak = [ec_tweak](store::StoreConfig& s) {
    ec_tweak(s);
    s.wal = true;
  };
  RunSequence(/*seed=*/19, /*replication=*/1, /*ops=*/100, so);
}

TEST(StoreInvariantTest, MaintenanceConvergesKilledSequenceToHealedState) {
  // Same mid-sequence death, but with the background maintenance service
  // running.  After each op the harness waits for the service to converge
  // and then demands the FULL invariant set — including exactly-R
  // replication — i.e. background repair must land the store in a state
  // indistinguishable from one that never lost a benefactor.
  SequenceOptions so;
  so.kill_after_writes = 10;
  so.maintenance = true;
  RunSequence(/*seed=*/13, /*replication=*/2, /*ops=*/120, so);
}

}  // namespace
}  // namespace nvm

// Tests for the sharded chunk cache, batched miss fetches, and the
// adaptive read-ahead ramp: shard distribution sanity, metadata
// round-trip coalescing on cold sequential scans, window ramp/reset,
// and a multi-threaded stress run whose final file contents must match
// the single-threaded expectation byte for byte.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "fuselite/mount.hpp"
#include "sim/clock.hpp"

namespace nvm::fuselite {
namespace {

constexpr uint64_t kChunk = 64_KiB;

class CacheShardTest : public ::testing::Test {
 protected:
  CacheShardTest() { Rebuild({}); }

  void Rebuild(FuseliteConfig config) {
    net::ClusterConfig cc;
    cc.num_nodes = 4;
    cluster_ = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.benefactor_nodes = {1, 2};
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store_ = std::make_unique<store::AggregateStore>(*cluster_, sc);
    mount_ = std::make_unique<MountPoint>(*store_, /*node=*/0, config);
    sim::CurrentClock().Reset();
  }

  std::vector<uint8_t> Pattern(uint64_t bytes, uint64_t seed) {
    std::vector<uint8_t> v(bytes);
    Xoshiro256 rng(seed);
    for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
    return v;
  }

  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<store::AggregateStore> store_;
  std::unique_ptr<MountPoint> mount_;
};

TEST_F(CacheShardTest, ContiguousChunksSpreadAcrossShards) {
  FuseliteConfig config;
  config.readahead = false;  // keep residency exactly what we touch
  Rebuild(config);
  ASSERT_EQ(mount_->cache().num_shards(), 16u);

  constexpr uint64_t kChunks = 64;
  auto f = mount_->Create("/spread", kChunks * kChunk);
  ASSERT_TRUE(f.ok());
  const auto data = Pattern(kChunks * kChunk, 11);
  ASSERT_TRUE(f->Write(0, data).ok());

  const auto occ = mount_->cache().ShardOccupancy();
  ASSERT_EQ(occ.size(), mount_->cache().num_shards());
  size_t total = 0;
  size_t non_empty = 0;
  size_t max_shard = 0;
  for (size_t n : occ) {
    total += n;
    if (n > 0) ++non_empty;
    max_shard = std::max(max_shard, n);
  }
  EXPECT_EQ(total, mount_->cache().resident_chunks());
  EXPECT_EQ(total, kChunks);
  // A contiguous chunk run must not pile up in a few shards: the hash
  // should leave no shard with more than half the slots and use a good
  // fraction of the shards.
  EXPECT_LE(max_shard, total / 2);
  EXPECT_GE(non_empty, 8u);
}

TEST_F(CacheShardTest, ColdSequentialScanCoalescesMetadataLookups) {
  constexpr uint64_t kChunks = 32;
  auto f = mount_->Create("/cold", kChunks * kChunk);
  ASSERT_TRUE(f.ok());
  const auto data = Pattern(kChunks * kChunk, 23);
  ASSERT_TRUE(f->Write(0, data).ok());
  ASSERT_TRUE(f->Sync().ok());

  // Read through a different node's mount: cold cache AND a cold
  // client-side location cache, so every chunk needs manager metadata.
  MountPoint other(*store_, /*node=*/3);
  auto g = other.Open("/cold");
  ASSERT_TRUE(g.ok());
  const uint64_t rtts_before = other.client().meta_round_trips();
  std::vector<uint8_t> got(data.size());
  ASSERT_TRUE(g->Read(0, got).ok());
  EXPECT_EQ(got, data);
  const uint64_t rtts = other.client().meta_round_trips() - rtts_before;

  // One lookup per chunk would cost kChunks round trips; batching must
  // coalesce the scan at least 4x (the single foreground run needs just
  // one GetReadLocations call).
  EXPECT_GE(rtts, 1u);
  EXPECT_LE(rtts * 4, kChunks);

  const auto& t = other.cache().traffic();
  EXPECT_GT(t.batch_fetches.load(), 0u);
  EXPECT_GE(t.batched_chunks.load(), kChunks / 2);
  EXPECT_EQ(t.fetched_chunks.load() + t.prefetched_chunks.load(), kChunks);
}

TEST_F(CacheShardTest, ReadaheadWindowRampsThenResetsOnNewStream) {
  constexpr uint64_t kChunks = 24;
  auto f = mount_->Create("/ramp", kChunks * kChunk);
  ASSERT_TRUE(f.ok());
  const auto data = Pattern(kChunks * kChunk, 31);
  ASSERT_TRUE(f->Write(0, data).ok());

  ASSERT_TRUE(f->Sync().ok());
  // Drop discards both the cached chunks and the write-time stream
  // state, so the scan below starts cold.
  ASSERT_TRUE(mount_->cache().Drop(sim::CurrentClock(), f->id()).ok());

  std::vector<uint8_t> buf(kChunk);
  ASSERT_TRUE(f->Read(0, buf).ok());
  EXPECT_LE(mount_->cache().readahead_window(f->id()), 2u);
  for (uint64_t i = 1; i < kChunks; ++i) {
    ASSERT_TRUE(f->Read(i * kChunk, buf).ok());
  }
  // A long sequential scan ramps the window up to the configured cap.
  EXPECT_EQ(mount_->cache().readahead_window(f->id()),
            FuseliteConfig{}.readahead_max_chunks);
  EXPECT_GT(mount_->cache().traffic().prefetched_chunks.load(), 0u);

  // Rewinding starts a fresh stream: the ramp begins again at 1.
  ASSERT_TRUE(f->Read(0, buf).ok());
  EXPECT_EQ(mount_->cache().readahead_window(f->id()), 1u);
}

TEST_F(CacheShardTest, ConcurrentDisjointWritersMatchSingleThreadedResult) {
  // A cache far smaller than the working set, hammered by ranks that own
  // disjoint chunk ranges of one file.  The sharded cache must preserve
  // exactly the bytes a single-threaded run would produce.
  FuseliteConfig config;
  config.cache_bytes = 8 * kChunk;
  Rebuild(config);

  constexpr int kRanks = 4;
  constexpr uint64_t kChunksPerRank = 4;
  constexpr uint64_t kTotal = kRanks * kChunksPerRank * kChunk;
  auto f = mount_->Create("/mt", kTotal);
  ASSERT_TRUE(f.ok());

  std::atomic<int> failures{0};
  auto placement = cluster_->BlockPlacement(kRanks, 1);
  cluster_->RunProcesses(placement, [&](net::ProcessEnv& env) {
    auto mine = mount_->Open("/mt");
    if (!mine.ok()) {
      failures.fetch_add(1);
      return;
    }
    const uint64_t base =
        static_cast<uint64_t>(env.rank) * kChunksPerRank * kChunk;
    const auto slice = Pattern(kChunksPerRank * kChunk,
                               1000 + static_cast<uint64_t>(env.rank));
    // Several passes of page-grained writes followed by read-back keep
    // all ranks contending for cache slots at once.
    for (int pass = 0; pass < 3; ++pass) {
      for (uint64_t off = 0; off < slice.size(); off += 4_KiB) {
        if (!mine->Write(base + off, {slice.data() + off, 4_KiB}).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      std::vector<uint8_t> got(slice.size());
      if (!mine->Read(base, got).ok() || got != slice) {
        failures.fetch_add(1);
        return;
      }
    }
    if (!mine->Sync().ok()) failures.fetch_add(1);
  });
  ASSERT_EQ(failures.load(), 0);

  // The single-threaded expectation: each rank's slice, in rank order.
  std::vector<uint8_t> expected(kTotal);
  for (int r = 0; r < kRanks; ++r) {
    const auto slice =
        Pattern(kChunksPerRank * kChunk, 1000 + static_cast<uint64_t>(r));
    std::copy(slice.begin(), slice.end(),
              expected.begin() +
                  static_cast<int64_t>(r * kChunksPerRank * kChunk));
  }
  std::vector<uint8_t> got(kTotal);
  ASSERT_TRUE(f->Read(0, got).ok());
  EXPECT_EQ(got, expected);

  // And the store itself (not just the cache) must agree.
  ASSERT_TRUE(mount_->cache().Drop(sim::CurrentClock(), f->id()).ok());
  MountPoint other(*store_, /*node=*/3);
  auto g = other.Open("/mt");
  ASSERT_TRUE(g.ok());
  std::vector<uint8_t> remote(kTotal);
  ASSERT_TRUE(g->Read(0, remote).ok());
  EXPECT_EQ(remote, expected);
}

}  // namespace
}  // namespace nvm::fuselite

// Tests for access-pattern advice (paper §III-B): write-once-read-many
// deepens read-ahead; stream-once evicts behind the read cursor.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nvmalloc/runtime.hpp"
#include "sim/clock.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr uint64_t kPage = NvmRegion::kPageBytes;

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;
  std::unique_ptr<NvmallocRuntime> runtime;

  explicit Rig(uint64_t cache_bytes = 2_MiB) {
    net::ClusterConfig cc;
    cc.num_nodes = 3;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.benefactor_nodes = {1, 2};
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    NvmallocConfig nc;
    nc.fuse.cache_bytes = cache_bytes;
    runtime = std::make_unique<NvmallocRuntime>(*store, 0, nc);
    sim::CurrentClock().Reset();
  }
};

// Stream a region start to end through the cache (page-sized reads).
void StreamOnce(NvmRegion* r) {
  std::vector<uint8_t> buf(kPage);
  for (uint64_t off = 0; off + kPage <= r->size_bytes(); off += kPage) {
    NVM_CHECK(r->Read(off, buf).ok());
  }
}

TEST(AdviceTest, StreamOnceEvictsBehindTheCursor) {
  Rig rig;
  constexpr uint64_t kBytes = 16 * kChunk;
  auto mk = [&](fuselite::AccessAdvice advice) {
    SsdMallocOptions o;
    o.advice = advice;
    auto r = rig.runtime->SsdMalloc(kBytes, o);
    NVM_CHECK(r.ok());
    NVM_CHECK((*r)->Write(0, std::vector<uint8_t>(kBytes, 1)).ok());
    NVM_CHECK((*r)->Sync().ok());
    (*r)->Invalidate();
    NVM_CHECK(
        rig.runtime->mount().cache().Drop(sim::CurrentClock(), (*r)->file_id())
            .ok());
    return *r;
  };

  // Normal advice leaves the streamed chunks resident (cache has room).
  NvmRegion* normal = mk(fuselite::AccessAdvice::kNormal);
  StreamOnce(normal);
  const size_t resident_normal = rig.runtime->mount().cache().resident_chunks();

  NvmRegion* once = mk(fuselite::AccessAdvice::kStreamOnce);
  const size_t before = rig.runtime->mount().cache().resident_chunks();
  StreamOnce(once);
  const size_t resident_after = rig.runtime->mount().cache().resident_chunks();
  // Evict-behind keeps at most a couple of this file's chunks resident.
  EXPECT_LE(resident_after - before + 2, 4u);
  EXPECT_GT(resident_normal, 8u);
}

TEST(AdviceTest, StreamOnceNeverDropsDirtyChunks) {
  Rig rig;
  SsdMallocOptions o;
  o.advice = fuselite::AccessAdvice::kStreamOnce;
  auto r = rig.runtime->SsdMalloc(8 * kChunk, o);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> data(8 * kChunk);
  Xoshiro256 rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE((*r)->Write(0, data).ok());
  // Read through the dirty data sequentially; nothing may be lost.
  StreamOnce(*r);
  ASSERT_TRUE((*r)->Sync().ok());
  (*r)->Invalidate();
  std::vector<uint8_t> got(8 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);
}

TEST(AdviceTest, WormPrefetchesDeeper) {
  auto prefetches = [&](fuselite::AccessAdvice advice) {
    Rig rig;
    SsdMallocOptions o;
    o.advice = advice;
    auto r = rig.runtime->SsdMalloc(16 * kChunk, o);
    NVM_CHECK(r.ok());
    NVM_CHECK((*r)->Write(0, std::vector<uint8_t>(16 * kChunk, 2)).ok());
    NVM_CHECK((*r)->Sync().ok());
    (*r)->Invalidate();
    NVM_CHECK(rig.runtime->mount()
                  .cache()
                  .Drop(sim::CurrentClock(), (*r)->file_id())
                  .ok());
    // Read only the first half; deeper read-ahead shows up as extra
    // prefetched chunks beyond the cursor.
    std::vector<uint8_t> buf(kPage);
    for (uint64_t off = 0; off < 8 * kChunk; off += kPage) {
      NVM_CHECK((*r)->Read(off, buf).ok());
    }
    return rig.runtime->mount().cache().traffic().prefetched_chunks.load();
  };
  const uint64_t normal = prefetches(fuselite::AccessAdvice::kNormal);
  const uint64_t worm = prefetches(fuselite::AccessAdvice::kWriteOnceReadMany);
  EXPECT_GT(worm, normal);
}

TEST(AdviceTest, StreamOnceCorrectUnderMixedAccess) {
  // Adversarial pattern for evict-behind: interleave sequential scans
  // (which trigger the drops) with random writes and re-reads; contents
  // must match a flat reference throughout.
  Rig rig(/*cache_bytes=*/512_KiB);
  SsdMallocOptions opts;
  opts.advice = fuselite::AccessAdvice::kStreamOnce;
  constexpr uint64_t kBytes = 12 * kChunk;
  auto r = rig.runtime->SsdMalloc(kBytes, opts);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> reference(kBytes, 0);

  Xoshiro256 rng(99);
  std::vector<uint8_t> buf;
  for (int round = 0; round < 6; ++round) {
    // Random writes.
    for (int w = 0; w < 40; ++w) {
      const uint64_t off = rng.NextBelow(kBytes);
      const uint64_t len =
          1 + rng.NextBelow(std::min<uint64_t>(kBytes - off, 3 * kPage));
      buf.resize(len);
      for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
      ASSERT_TRUE((*r)->Write(off, buf).ok());
      std::copy(buf.begin(), buf.end(), reference.begin() + off);
    }
    // A full sequential scan (the evict-behind trigger), verifying.
    buf.resize(kPage);
    for (uint64_t off = 0; off + kPage <= kBytes; off += kPage) {
      ASSERT_TRUE((*r)->Read(off, buf).ok());
      ASSERT_TRUE(std::equal(buf.begin(), buf.end(),
                             reference.begin() + off))
          << "round " << round << " offset " << off;
    }
  }
  ASSERT_TRUE(rig.runtime->SsdFree(*r).ok());
}

TEST(AdviceTest, AdviceClearsWithNormal) {
  Rig rig;
  auto& cache = rig.runtime->mount().cache();
  cache.SetAdvice(42, fuselite::AccessAdvice::kStreamOnce);
  EXPECT_EQ(cache.advice(42), fuselite::AccessAdvice::kStreamOnce);
  cache.SetAdvice(42, fuselite::AccessAdvice::kNormal);
  EXPECT_EQ(cache.advice(42), fuselite::AccessAdvice::kNormal);
  EXPECT_EQ(cache.advice(7), fuselite::AccessAdvice::kNormal);
}

}  // namespace
}  // namespace nvm

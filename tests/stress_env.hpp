// NVM_STRESS_ITERS multiplies the iteration counts of the randomized
// stress / invariant suites (the nightly CI tier exports it as 10 to run
// the same seeds ten times deeper; unset means 1).
#pragma once

#include <cstdlib>

namespace nvm {

inline int StressIters(int base) {
  static const int mult = [] {
    const char* env = std::getenv("NVM_STRESS_ITERS");
    if (env == nullptr) return 1;
    const int m = std::atoi(env);
    return m > 0 ? m : 1;
  }();
  return base * mult;
}

}  // namespace nvm

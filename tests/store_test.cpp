// Unit tests for the aggregate NVM store: namespace, fallocate striping,
// chunk read/write, copy-on-write versioning, checkpoint linking,
// replication, space accounting, and benefactor failure injection.
#include <gtest/gtest.h>

#include "net/cluster.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

namespace nvm::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  StoreTest() { Rebuild(1); }

  void Rebuild(int replication, uint64_t contribution = 4_MiB) {
    net::ClusterConfig cc;
    cc.num_nodes = 6;
    cluster_ = std::make_unique<net::Cluster>(cc);
    AggregateStoreConfig sc;
    sc.store.chunk_bytes = 64_KiB;
    sc.store.page_bytes = 4_KiB;
    sc.store.replication = replication;
    sc.benefactor_nodes = {2, 3, 4, 5};
    sc.contribution_bytes = contribution;
    sc.manager_node = 2;
    store_ = std::make_unique<AggregateStore>(*cluster_, sc);
    client_ = &store_->ClientForNode(0);
    sim::CurrentClock().Reset();
  }

  Manager& manager() { return store_->manager(); }
  sim::VirtualClock& clock() { return sim::CurrentClock(); }
  uint64_t chunk_bytes() const { return 64_KiB; }

  std::vector<uint8_t> Pattern(uint64_t bytes, uint8_t seed) {
    std::vector<uint8_t> v(bytes);
    for (uint64_t i = 0; i < bytes; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }

  Bitmap AllPages() {
    Bitmap b(chunk_bytes() / 4_KiB);
    b.SetAll();
    return b;
  }

  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<AggregateStore> store_;
  StoreClient* client_ = nullptr;
};

TEST_F(StoreTest, CreateLookupStatUnlink) {
  auto id = client_->Create(clock(), "/f1");
  ASSERT_TRUE(id.ok());
  EXPECT_NE(*id, kInvalidFileId);

  auto dup = client_->Create(clock(), "/f1");
  EXPECT_EQ(dup.status().code(), ErrorCode::kAlreadyExists);

  auto found = client_->Open(clock(), "/f1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *id);

  auto info = client_->Stat(clock(), *id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 0u);
  EXPECT_EQ(info->name, "/f1");

  EXPECT_TRUE(client_->Unlink(clock(), *id).ok());
  EXPECT_EQ(client_->Open(clock(), "/f1").status().code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(client_->Unlink(clock(), *id).code(), ErrorCode::kNotFound);
}

TEST_F(StoreTest, FallocateStripesRoundRobin) {
  auto id = client_->Create(clock(), "/striped");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, 8 * chunk_bytes()).ok());

  auto info = client_->Stat(clock(), *id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->num_chunks, 8u);
  EXPECT_EQ(info->size, 8 * chunk_bytes());

  // 8 chunks over 4 benefactors: 2 each.
  for (size_t b = 0; b < store_->num_benefactors(); ++b) {
    EXPECT_EQ(store_->benefactor(b).bytes_used(), 2 * chunk_bytes());
  }
}

TEST_F(StoreTest, FallocateIsIdempotentAndGrows) {
  auto id = client_->Create(clock(), "/grow");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  auto info = client_->Stat(clock(), *id);
  EXPECT_EQ(info->num_chunks, 1u);
  ASSERT_TRUE(client_->Fallocate(clock(), *id, 3 * chunk_bytes()).ok());
  info = client_->Stat(clock(), *id);
  EXPECT_EQ(info->num_chunks, 3u);
  // Shrinking is a no-op (posix_fallocate never truncates).
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  EXPECT_EQ(client_->Stat(clock(), *id)->num_chunks, 3u);
}

TEST_F(StoreTest, WriteThenReadRoundTrip) {
  auto id = client_->Create(clock(), "/data");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, 2 * chunk_bytes()).ok());

  auto img0 = Pattern(chunk_bytes(), 1);
  auto img1 = Pattern(chunk_bytes(), 99);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *id, 0, AllPages(), img0).ok());
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *id, 1, AllPages(), img1).ok());

  std::vector<uint8_t> got(chunk_bytes());
  ASSERT_TRUE(client_->ReadChunk(clock(), *id, 0, got).ok());
  EXPECT_EQ(got, img0);
  ASSERT_TRUE(client_->ReadChunk(clock(), *id, 1, got).ok());
  EXPECT_EQ(got, img1);
}

TEST_F(StoreTest, SparseChunksReadAsZeros) {
  auto id = client_->Create(clock(), "/sparse");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  std::vector<uint8_t> got(chunk_bytes(), 0xFF);
  ASSERT_TRUE(client_->ReadChunk(clock(), *id, 0, got).ok());
  for (uint8_t b : got) ASSERT_EQ(b, 0);
  // No device traffic for the sparse read.
  EXPECT_EQ(cluster_->TotalSsdBytesRead(), 0u);
}

TEST_F(StoreTest, PartialPageWriteKeepsOtherPages) {
  auto id = client_->Create(clock(), "/partial");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());

  auto full = Pattern(chunk_bytes(), 5);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *id, 0, AllPages(), full).ok());

  // Rewrite only page 3.
  auto img = full;
  for (uint64_t i = 3 * 4_KiB; i < 4 * 4_KiB; ++i) img[i] = 0xAB;
  Bitmap dirty(chunk_bytes() / 4_KiB);
  dirty.Set(3);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *id, 0, dirty, img).ok());

  std::vector<uint8_t> got(chunk_bytes());
  ASSERT_TRUE(client_->ReadChunk(clock(), *id, 0, got).ok());
  EXPECT_EQ(got, img);
}

TEST_F(StoreTest, DirtyPageWriteChargesOnlyDirtyBytes) {
  auto id = client_->Create(clock(), "/dirty");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  Bitmap dirty(chunk_bytes() / 4_KiB);
  dirty.Set(0);
  dirty.Set(7);
  auto img = Pattern(chunk_bytes(), 9);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *id, 0, dirty, img).ok());
  EXPECT_EQ(cluster_->TotalSsdBytesWritten(), 2 * 4_KiB);
  EXPECT_EQ(client_->bytes_flushed(), 2 * 4_KiB);
}

TEST_F(StoreTest, ReadBeyondEofFails) {
  auto id = client_->Create(clock(), "/eof");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  std::vector<uint8_t> got(chunk_bytes());
  EXPECT_EQ(client_->ReadChunk(clock(), *id, 5, got).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(StoreTest, LinkSharesChunksAndBumpsRefcounts) {
  auto src = client_->Create(clock(), "/var");
  auto dst = client_->Create(clock(), "/ckpt");
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(dst.ok());
  ASSERT_TRUE(client_->Fallocate(clock(), *src, 2 * chunk_bytes()).ok());
  auto img = Pattern(chunk_bytes(), 42);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *src, 0, AllPages(), img).ok());

  const uint64_t used_before = store_->benefactor(0).bytes_used() +
                               store_->benefactor(1).bytes_used() +
                               store_->benefactor(2).bytes_used() +
                               store_->benefactor(3).bytes_used();
  auto off = client_->LinkFileChunks(clock(), *dst, *src);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, 0u);  // dst was empty

  // No extra space consumed: chunks are shared.
  const uint64_t used_after = store_->benefactor(0).bytes_used() +
                              store_->benefactor(1).bytes_used() +
                              store_->benefactor(2).bytes_used() +
                              store_->benefactor(3).bytes_used();
  EXPECT_EQ(used_before, used_after);

  // The checkpoint file reads the same data.
  std::vector<uint8_t> got(chunk_bytes());
  ASSERT_TRUE(client_->ReadChunk(clock(), *dst, 0, got).ok());
  EXPECT_EQ(got, img);

  // Refcount is 2; deleting the source must keep the data alive.
  ASSERT_TRUE(client_->Unlink(clock(), *src).ok());
  ASSERT_TRUE(client_->ReadChunk(clock(), *dst, 0, got).ok());
  EXPECT_EQ(got, img);
}

TEST_F(StoreTest, LinkOffsetIsChunkAligned) {
  auto src = client_->Create(clock(), "/var");
  auto dst = client_->Create(clock(), "/ckpt");
  ASSERT_TRUE(client_->Fallocate(clock(), *src, chunk_bytes()).ok());
  // dst has 1.5 chunks of data -> 2 chunks allocated.
  ASSERT_TRUE(
      client_->Fallocate(clock(), *dst, chunk_bytes() + chunk_bytes() / 2)
          .ok());
  auto off = client_->LinkFileChunks(clock(), *dst, *src);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(*off, 2 * chunk_bytes());
  EXPECT_EQ(client_->Stat(clock(), *dst)->size, 3 * chunk_bytes());
}

TEST_F(StoreTest, CopyOnWritePreservesLinkedCheckpoint) {
  auto src = client_->Create(clock(), "/var");
  auto dst = client_->Create(clock(), "/ckpt");
  ASSERT_TRUE(client_->Fallocate(clock(), *src, chunk_bytes()).ok());
  auto v1 = Pattern(chunk_bytes(), 1);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *src, 0, AllPages(), v1).ok());
  ASSERT_TRUE(client_->LinkFileChunks(clock(), *dst, *src).ok());

  // Overwrite the live variable: must trigger COW, not corrupt the ckpt.
  auto v2 = Pattern(chunk_bytes(), 2);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *src, 0, AllPages(), v2).ok());

  std::vector<uint8_t> got(chunk_bytes());
  ASSERT_TRUE(client_->ReadChunk(clock(), *dst, 0, got).ok());
  EXPECT_EQ(got, v1);  // checkpoint unchanged
  ASSERT_TRUE(client_->ReadChunk(clock(), *src, 0, got).ok());
  EXPECT_EQ(got, v2);  // live variable updated
}

TEST_F(StoreTest, CowOnlyOnSharedChunks) {
  auto src = client_->Create(clock(), "/var");
  ASSERT_TRUE(client_->Fallocate(clock(), *src, chunk_bytes()).ok());
  auto v1 = Pattern(chunk_bytes(), 1);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *src, 0, AllPages(), v1).ok());

  // Unshared chunk: writes go in place (version stays 0).
  auto loc = manager().PrepareWrite(clock(), *src, 0);
  ASSERT_TRUE(loc.ok());
  EXPECT_FALSE(loc->needs_clone);
  EXPECT_EQ(loc->key.version, 0u);
  manager().CompleteWrite(loc->key);  // every prepare pairs with a complete
}

TEST_F(StoreTest, RepeatedCheckpointsShareUntouchedChunks) {
  auto src = client_->Create(clock(), "/var");
  ASSERT_TRUE(client_->Fallocate(clock(), *src, 4 * chunk_bytes()).ok());
  for (uint32_t i = 0; i < 4; ++i) {
    auto img = Pattern(chunk_bytes(), static_cast<uint8_t>(i));
    ASSERT_TRUE(
        client_->WriteChunkPages(clock(), *src, i, AllPages(), img).ok());
  }
  auto ck1 = client_->Create(clock(), "/ck1");
  ASSERT_TRUE(client_->LinkFileChunks(clock(), *ck1, *src).ok());

  // Modify one chunk only, checkpoint again.
  auto img = Pattern(chunk_bytes(), 200);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *src, 2, AllPages(), img).ok());
  auto ck2 = client_->Create(clock(), "/ck2");
  ASSERT_TRUE(client_->LinkFileChunks(clock(), *ck2, *src).ok());

  // Chunks 0,1,3 are shared three ways; chunk 2 exists in two versions.
  EXPECT_EQ(manager().ChunkRefcount({*src, 0, 0}), 3u);
  EXPECT_EQ(manager().ChunkRefcount({*src, 2, 0}), 1u);  // only ck1
  EXPECT_EQ(manager().ChunkRefcount({*src, 2, 1}), 2u);  // live + ck2
}

TEST_F(StoreTest, OutOfSpaceReported) {
  Rebuild(1, /*contribution=*/2 * 64_KiB);  // 4 benefactors x 2 chunks
  auto id = client_->Create(clock(), "/big");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(client_->Fallocate(clock(), *id, 8 * chunk_bytes()).ok());
  auto id2 = client_->Create(clock(), "/more");
  EXPECT_EQ(client_->Fallocate(clock(), *id2, chunk_bytes()).code(),
            ErrorCode::kOutOfSpace);
  // Unlinking frees space for reuse.
  ASSERT_TRUE(client_->Unlink(clock(), *id).ok());
  EXPECT_TRUE(client_->Fallocate(clock(), *id2, chunk_bytes()).ok());
}

TEST_F(StoreTest, DeadBenefactorFailsReadsWithoutReplication) {
  auto id = client_->Create(clock(), "/victim");
  ASSERT_TRUE(client_->Fallocate(clock(), *id, 4 * chunk_bytes()).ok());
  auto img = Pattern(chunk_bytes(), 3);
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        client_->WriteChunkPages(clock(), *id, i, AllPages(), img).ok());
  }
  store_->benefactor(1).Kill();
  int failures = 0;
  std::vector<uint8_t> got(chunk_bytes());
  for (uint32_t i = 0; i < 4; ++i) {
    if (!client_->ReadChunk(clock(), *id, i, got).ok()) ++failures;
  }
  EXPECT_EQ(failures, 1);  // exactly the chunk on the dead benefactor
  EXPECT_EQ(manager().AliveBenefactors().size(), 3u);
}

TEST_F(StoreTest, ReplicationSurvivesBenefactorDeath) {
  Rebuild(/*replication=*/2);
  auto id = client_->Create(clock(), "/replicated");
  ASSERT_TRUE(client_->Fallocate(clock(), *id, 4 * chunk_bytes()).ok());
  for (uint32_t i = 0; i < 4; ++i) {
    auto img = Pattern(chunk_bytes(), static_cast<uint8_t>(i * 7));
    ASSERT_TRUE(
        client_->WriteChunkPages(clock(), *id, i, AllPages(), img).ok());
  }
  store_->benefactor(0).Kill();
  std::vector<uint8_t> got(chunk_bytes());
  for (uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client_->ReadChunk(clock(), *id, i, got).ok());
    EXPECT_EQ(got, Pattern(chunk_bytes(), static_cast<uint8_t>(i * 7)));
  }
}

TEST_F(StoreTest, HeartbeatDetectsDeath) {
  EXPECT_EQ(manager().CheckLiveness(clock()), 4u);
  store_->benefactor(2).Kill();
  EXPECT_EQ(manager().CheckLiveness(clock()), 3u);
  store_->benefactor(2).Revive();
  EXPECT_EQ(manager().CheckLiveness(clock()), 4u);
}

TEST_F(StoreTest, FallocateSkipsDeadBenefactors) {
  store_->benefactor(0).Kill();
  auto id = client_->Create(clock(), "/skip");
  ASSERT_TRUE(client_->Fallocate(clock(), *id, 4 * chunk_bytes()).ok());
  EXPECT_EQ(store_->benefactor(0).bytes_used(), 0u);
}

TEST_F(StoreTest, MetadataOpsChargeTime) {
  const int64_t t0 = clock().now();
  auto id = client_->Create(clock(), "/timed");
  ASSERT_TRUE(id.ok());
  EXPECT_GT(clock().now(), t0);
}

TEST_F(StoreTest, RemoteChunkFetchChargesNetworkAndSsd) {
  auto id = client_->Create(clock(), "/remote");
  ASSERT_TRUE(client_->Fallocate(clock(), *id, chunk_bytes()).ok());
  auto img = Pattern(chunk_bytes(), 8);
  ASSERT_TRUE(client_->WriteChunkPages(clock(), *id, 0, AllPages(), img).ok());
  const int64_t before = clock().now();
  std::vector<uint8_t> got(chunk_bytes());
  ASSERT_TRUE(client_->ReadChunk(clock(), *id, 0, got).ok());
  const int64_t elapsed = clock().now() - before;
  // At least the SSD read (64 KiB at 250 MB/s = 262 us + 75 us latency)
  // plus the network hop.
  EXPECT_GT(elapsed, 300'000);
  EXPECT_GT(cluster_->network().remote_bytes(), chunk_bytes());
}

}  // namespace
}  // namespace nvm::store

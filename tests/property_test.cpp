// Property-based tests: random operation sequences checked against
// independent reference models, parameterised (TEST_P) across the
// configuration space — cache geometry, pool pressure, replication,
// random seeds.  These are the tests that catch granularity-boundary and
// eviction-interleaving bugs that example-based tests miss.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "fuselite/mount.hpp"
#include "nvmalloc/runtime.hpp"
#include "nvmalloc/transparent.hpp"
#include "sim/clock.hpp"
#include "sim/resource.hpp"

namespace nvm {
namespace {

// Shared store scaffolding.
struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;

  explicit Rig(uint64_t chunk_bytes, int replication = 1) {
    net::ClusterConfig cc;
    cc.num_nodes = 5;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = chunk_bytes;
    sc.store.replication = replication;
    sc.benefactor_nodes = {1, 2, 3, 4};
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }
};

// ---------- Cache vs flat reference ----------

// (chunk_bytes, cache_bytes, readahead, dirty_page_writeback, seed)
using CacheParam = std::tuple<uint64_t, uint64_t, bool, bool, uint64_t>;

class CachePropertyTest : public ::testing::TestWithParam<CacheParam> {};

TEST_P(CachePropertyTest, RandomOpsMatchReferenceBuffer) {
  const auto [chunk, cache_bytes, readahead, page_wb, seed] = GetParam();
  Rig rig(chunk);
  fuselite::FuseliteConfig cfg;
  cfg.cache_bytes = cache_bytes;
  cfg.readahead = readahead;
  cfg.dirty_page_writeback = page_wb;
  fuselite::MountPoint mount(*rig.store, 0, cfg);

  constexpr uint64_t kFileBytes = 24 * 4_KiB * 11;  // deliberately odd
  auto f = mount.Create("/prop", kFileBytes);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> reference(kFileBytes, 0);

  Xoshiro256 rng(seed);
  std::vector<uint8_t> buf;
  for (int op = 0; op < 400; ++op) {
    const uint64_t offset = rng.NextBelow(kFileBytes);
    const uint64_t len =
        1 + rng.NextBelow(std::min<uint64_t>(kFileBytes - offset, 3 * chunk));
    switch (rng.NextBelow(5)) {
      case 0:
      case 1: {  // write
        buf.resize(len);
        for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
        ASSERT_TRUE(f->Write(offset, buf).ok());
        std::copy(buf.begin(), buf.end(), reference.begin() + offset);
        break;
      }
      case 2:
      case 3: {  // read + compare
        buf.assign(len, 0xCC);
        ASSERT_TRUE(f->Read(offset, buf).ok());
        ASSERT_TRUE(std::equal(buf.begin(), buf.end(),
                               reference.begin() + offset))
            << "read mismatch at op " << op << " offset " << offset;
        break;
      }
      case 4: {  // flush or drop — neither may lose data
        if (rng.NextBelow(2) == 0) {
          ASSERT_TRUE(f->Sync().ok());
        } else {
          ASSERT_TRUE(mount.cache().Drop(sim::CurrentClock(), f->id()).ok());
        }
        break;
      }
    }
  }
  // Final full-file comparison after a flush.
  ASSERT_TRUE(f->Sync().ok());
  std::vector<uint8_t> all(kFileBytes);
  ASSERT_TRUE(f->Read(0, all).ok());
  EXPECT_EQ(all, reference);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CachePropertyTest,
    ::testing::Values(
        CacheParam{16_KiB, 32_KiB, true, true, 1},
        CacheParam{16_KiB, 32_KiB, false, false, 2},
        CacheParam{64_KiB, 128_KiB, true, true, 3},
        CacheParam{64_KiB, 128_KiB, true, false, 4},
        CacheParam{64_KiB, 1_MiB, false, true, 5},
        CacheParam{32_KiB, 64_KiB, true, true, 6},
        CacheParam{32_KiB, 2_MiB, true, true, 7},
        CacheParam{128_KiB, 256_KiB, false, true, 8},
        CacheParam{16_KiB, 16_KiB, true, true, 9},    // single-slot cache
        CacheParam{64_KiB, 4_MiB, true, true, 10},    // everything fits
        CacheParam{128_KiB, 128_KiB, true, false, 11}));

// ---------- Region pager vs flat reference ----------

// (pool_pages, cache_bytes, seed)
using RegionParam = std::tuple<uint64_t, uint64_t, uint64_t>;

class RegionPropertyTest : public ::testing::TestWithParam<RegionParam> {};

TEST_P(RegionPropertyTest, RandomOpsMatchReferenceBuffer) {
  const auto [pool_pages, cache_bytes, seed] = GetParam();
  Rig rig(64_KiB);
  NvmallocConfig cfg;
  cfg.page_pool_bytes = pool_pages * 4_KiB;
  cfg.fuse.cache_bytes = cache_bytes;
  NvmallocRuntime runtime(*rig.store, 0, cfg);

  constexpr uint64_t kBytes = 300'000;  // not page- or chunk-aligned
  auto r = runtime.SsdMalloc(kBytes);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> reference(kBytes, 0);

  Xoshiro256 rng(seed);
  std::vector<uint8_t> buf;
  for (int op = 0; op < 300; ++op) {
    const uint64_t offset = rng.NextBelow(kBytes);
    const uint64_t len =
        1 + rng.NextBelow(std::min<uint64_t>(kBytes - offset, 20'000));
    switch (rng.NextBelow(5)) {
      case 0:
      case 1: {
        buf.resize(len);
        for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
        ASSERT_TRUE((*r)->Write(offset, buf).ok());
        std::copy(buf.begin(), buf.end(), reference.begin() + offset);
        break;
      }
      case 2: {  // pinned read
        auto span = (*r)->Pin(offset, len, false);
        ASSERT_TRUE(span.ok());
        ASSERT_TRUE(std::equal(span->data(), span->data() + len,
                               reference.begin() + offset));
        break;
      }
      case 3: {
        buf.assign(len, 0xEE);
        ASSERT_TRUE((*r)->Read(offset, buf).ok());
        ASSERT_TRUE(std::equal(buf.begin(), buf.end(),
                               reference.begin() + offset));
        break;
      }
      case 4: {
        ASSERT_TRUE((*r)->Sync().ok());
        break;
      }
    }
  }
  ASSERT_TRUE((*r)->Sync().ok());
  std::vector<uint8_t> all(kBytes);
  ASSERT_TRUE((*r)->Read(0, all).ok());
  EXPECT_EQ(all, reference);
  ASSERT_TRUE(runtime.SsdFree(*r).ok());
}

INSTANTIATE_TEST_SUITE_P(
    PoolPressure, RegionPropertyTest,
    ::testing::Values(RegionParam{8, 128_KiB, 11},   // brutal thrash
                      RegionParam{16, 128_KiB, 12},
                      RegionParam{32, 256_KiB, 13},
                      RegionParam{128, 1_MiB, 14},
                      RegionParam{4096, 4_MiB, 15},  // everything resident
                      RegionParam{8, 2_MiB, 16},
                      RegionParam{16, 64_KiB, 17},
                      RegionParam{1, 64_KiB, 18},      // one-page pool
                      RegionParam{64, 64_KiB, 19}));

// ---------- Resource timeline properties ----------

class ResourcePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResourcePropertyTest, ReservationsNeverOverlapAndConserveService) {
  sim::Resource r("prop");
  Xoshiro256 rng(GetParam());
  std::vector<std::pair<int64_t, int64_t>> intervals;  // [start, end)
  int64_t total_service = 0;
  for (int i = 0; i < 500; ++i) {
    const auto earliest = static_cast<int64_t>(rng.NextBelow(1'000'000));
    const auto duration = static_cast<int64_t>(1 + rng.NextBelow(5'000));
    const int64_t start = r.Schedule(earliest, duration);
    ASSERT_GE(start, earliest);
    intervals.emplace_back(start, start + duration);
    total_service += duration;
  }
  EXPECT_EQ(r.busy_ns(), total_service);
  // Pairwise non-overlap (the resource serves one request at a time).
  std::sort(intervals.begin(), intervals.end());
  for (size_t i = 1; i < intervals.size(); ++i) {
    ASSERT_LE(intervals[i - 1].second, intervals[i].first)
        << "overlapping reservations at index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResourcePropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25));

// ---------- Manager / store invariants under random namespace ops ----------

class StorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorePropertyTest, ReservationsTrackLiveChunksExactly) {
  Rig rig(64_KiB);
  auto& manager = rig.store->manager();
  auto& client = rig.store->ClientForNode(0);
  auto& clock = sim::CurrentClock();

  Xoshiro256 rng(GetParam());
  std::map<std::string, store::FileId> live;
  std::map<store::FileId, std::vector<uint8_t>> contents;  // file images
  uint64_t next_name = 0;

  auto total_reserved = [&] {
    uint64_t sum = 0;
    for (size_t b = 0; b < rig.store->num_benefactors(); ++b) {
      sum += rig.store->benefactor(b).bytes_used();
    }
    return sum;
  };
  auto expected_chunks = [&] {
    uint64_t chunks = 0;
    std::set<store::ChunkKey, decltype([](const store::ChunkKey& a,
                                          const store::ChunkKey& b) {
      return std::tie(a.origin_file, a.index, a.version) <
             std::tie(b.origin_file, b.index, b.version);
    })> seen;
    for (const auto& [name, id] : live) {
      auto info = client.Stat(clock, id);
      chunks += info->num_chunks;
    }
    return chunks;
  };

  for (int op = 0; op < 200; ++op) {
    switch (rng.NextBelow(4)) {
      case 0: {  // create + fallocate
        const std::string name = "/p" + std::to_string(next_name++);
        auto id = client.Create(clock, name);
        ASSERT_TRUE(id.ok());
        const uint64_t size = (1 + rng.NextBelow(6)) * 64_KiB;
        ASSERT_TRUE(client.Fallocate(clock, *id, size).ok());
        live[name] = *id;
        contents[*id] = std::vector<uint8_t>(size, 0);
        break;
      }
      case 1: {  // write a chunk of a random live file
        if (live.empty()) break;
        auto it = std::next(live.begin(),
                            static_cast<long>(rng.NextBelow(live.size())));
        auto& image = contents[it->second];
        const auto index =
            static_cast<uint32_t>(rng.NextBelow(image.size() / 64_KiB));
        std::vector<uint8_t> chunk_img(64_KiB);
        for (auto& b : chunk_img) b = static_cast<uint8_t>(rng.Next());
        Bitmap all(64_KiB / 4_KiB);
        all.SetAll();
        ASSERT_TRUE(
            client.WriteChunkPages(clock, it->second, index, all, chunk_img)
                .ok());
        std::copy(chunk_img.begin(), chunk_img.end(),
                  image.begin() + index * 64_KiB);
        break;
      }
      case 2: {  // read a chunk back and compare
        if (live.empty()) break;
        auto it = std::next(live.begin(),
                            static_cast<long>(rng.NextBelow(live.size())));
        const auto& image = contents[it->second];
        const auto index =
            static_cast<uint32_t>(rng.NextBelow(image.size() / 64_KiB));
        std::vector<uint8_t> got(64_KiB);
        ASSERT_TRUE(client.ReadChunk(clock, it->second, index, got).ok());
        ASSERT_TRUE(std::equal(got.begin(), got.end(),
                               image.begin() + index * 64_KiB));
        break;
      }
      case 3: {  // unlink
        if (live.empty()) break;
        auto it = std::next(live.begin(),
                            static_cast<long>(rng.NextBelow(live.size())));
        ASSERT_TRUE(client.Unlink(clock, it->second).ok());
        contents.erase(it->second);
        live.erase(it);
        break;
      }
    }
    // Invariant: benefactor space accounting equals the live chunk count.
    ASSERT_EQ(total_reserved(), expected_chunks() * 64_KiB);
  }
  EXPECT_EQ(manager.num_files(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorePropertyTest,
                         ::testing::Values(31, 32, 33));

// ---------- Checkpoint chains: every snapshot restorable ----------

class CheckpointChainTest : public ::testing::TestWithParam<double> {};

TEST_P(CheckpointChainTest, EverySnapshotRestoresItsExactState) {
  const double dirty_fraction = GetParam();
  Rig rig(64_KiB);
  NvmallocRuntime runtime(*rig.store, 0);

  constexpr uint64_t kBytes = 16 * 64_KiB;
  auto r = runtime.SsdMalloc(kBytes);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> shadow(kBytes);
  Xoshiro256 rng(777);
  for (auto& b : shadow) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE((*r)->Write(0, shadow).ok());

  constexpr int kSteps = 4;
  std::vector<std::vector<uint8_t>> snapshots;
  for (int t = 0; t < kSteps; ++t) {
    if (t > 0) {
      const auto pages = kBytes / 4_KiB;
      const auto dirty = static_cast<uint64_t>(
          static_cast<double>(pages) * dirty_fraction);
      for (uint64_t d = 0; d < std::max<uint64_t>(1, dirty); ++d) {
        const uint64_t page = rng.NextBelow(pages);
        std::vector<uint8_t> pd(4_KiB);
        for (auto& b : pd) b = static_cast<uint8_t>(rng.Next());
        ASSERT_TRUE((*r)->Write(page * 4_KiB, pd).ok());
        std::copy(pd.begin(), pd.end(), shadow.begin() + page * 4_KiB);
      }
    }
    CheckpointSpec spec;
    spec.nvm.push_back(*r);
    ASSERT_TRUE(
        runtime.SsdCheckpoint(spec, "/chain/t" + std::to_string(t)).ok());
    snapshots.push_back(shadow);
  }

  // Every checkpoint — not just the newest — must restore bit-exactly.
  for (int t = 0; t < kSteps; ++t) {
    auto fresh = runtime.SsdMalloc(kBytes);
    ASSERT_TRUE(fresh.ok());
    RestoreSpec restore;
    restore.nvm.push_back(*fresh);
    ASSERT_TRUE(
        runtime.SsdRestart("/chain/t" + std::to_string(t), restore).ok());
    std::vector<uint8_t> got(kBytes);
    ASSERT_TRUE((*fresh)->Read(0, got).ok());
    EXPECT_EQ(got, snapshots[static_cast<size_t>(t)])
        << "checkpoint t" << t << " corrupted by later activity";
    ASSERT_TRUE(runtime.SsdFree(*fresh).ok());
  }
  ASSERT_TRUE(runtime.SsdFree(*r).ok());
}

INSTANTIATE_TEST_SUITE_P(DirtyFractions, CheckpointChainTest,
                         ::testing::Values(0.02, 0.1, 0.5, 1.0));

// ---------- Transparent map vs reference under random pointers ----------

class TransparentPropertyTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(TransparentPropertyTest, RandomPointerOpsMatchReference) {
  const auto [max_resident, seed] = GetParam();
  Rig rig(64_KiB);
  NvmallocRuntime runtime(*rig.store, 0);
  TransparentMap::Options opts;
  opts.max_resident_pages = max_resident;
  constexpr uint64_t kBytes = 48 * 4_KiB;
  auto map = TransparentMap::Create(runtime, kBytes, opts);
  ASSERT_TRUE(map.ok());
  auto* bytes = static_cast<uint8_t*>((*map)->data());
  std::vector<uint8_t> reference(kBytes, 0);

  Xoshiro256 rng(seed);
  for (int op = 0; op < 5000; ++op) {
    const uint64_t i = rng.NextBelow(kBytes);
    if (rng.NextBelow(2) == 0) {
      const auto v = static_cast<uint8_t>(rng.Next());
      bytes[i] = v;
      reference[i] = v;
    } else {
      ASSERT_EQ(bytes[i], reference[i]) << "at offset " << i;
    }
  }
  ASSERT_TRUE((*map)->Sync().ok());
  for (uint64_t i = 0; i < kBytes; i += 13) {
    ASSERT_EQ(bytes[i], reference[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, TransparentPropertyTest,
    ::testing::Values(std::tuple<size_t, uint64_t>{2, 41},
                      std::tuple<size_t, uint64_t>{8, 42},
                      std::tuple<size_t, uint64_t>{64, 43}));

// ---------- Persistence across runtimes ----------

TEST(PersistencePropertyTest, SurvivesFreeAndReattachesAnywhere) {
  Rig rig(64_KiB);
  NvmallocRuntime producer(*rig.store, 0);
  auto r = producer.SsdMalloc(
      2 * 64_KiB, {.persistent = true, .persist_name = "handoff"});
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> data(2 * 64_KiB);
  Xoshiro256 rng(5);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE(producer.SsdFree(*r).ok());

  // Re-attach from another node's runtime.
  NvmallocRuntime consumer(*rig.store, 3);
  auto got = consumer.OpenPersistent("handoff");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->size_bytes(), 2 * 64_KiB);
  std::vector<uint8_t> read_back(2 * 64_KiB);
  ASSERT_TRUE((*got)->Read(0, read_back).ok());
  EXPECT_EQ(read_back, data);
  ASSERT_TRUE(consumer.SsdFree(*got).ok());

  // Still present until dropped.
  ASSERT_TRUE(consumer.OpenPersistent("handoff").ok());
  ASSERT_TRUE(consumer.DropPersistent("handoff").ok());
  EXPECT_EQ(consumer.OpenPersistent("handoff").status().code(),
            ErrorCode::kNotFound);
}

TEST(PersistencePropertyTest, NonPersistentVariablesVanishOnFree) {
  Rig rig(64_KiB);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(64_KiB);
  ASSERT_TRUE(r.ok());
  const uint64_t files_before = rig.store->manager().num_files();
  ASSERT_TRUE(runtime.SsdFree(*r).ok());
  EXPECT_EQ(rig.store->manager().num_files(), files_before - 1);
}

}  // namespace
}  // namespace nvm

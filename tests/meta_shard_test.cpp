// Tests for the sharded manager metadata plane (StoreConfig::meta_shards):
// the splitmix64 chunk-key partition, equality of every client-visible
// metadata result between one shard and many, the PR-4 repair-engine race
// invariants re-run with chunks spread over four shards (cross-shard
// fences, repair-target registries, and epochs), and a multi-threaded
// resolve/write/repair hammer that runs under TSan via the `concurrency`
// label to exercise the lock-free resolve snapshots and the ascending
// multi-shard locking discipline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;

// Quiet sweeps (pushed out of the horizon) so staged race sequences run
// undisturbed, and four metadata shards so every multi-chunk operation
// crosses shard boundaries.
constexpr auto kQuietSharded = [](store::StoreConfig& cfg) {
  cfg.heartbeat_period_ms = 1'000'000;
  cfg.scrub_period_ms = 1'000'000;
  cfg.meta_shards = 4;
};

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;

  explicit Rig(int replication,
               std::function<void(store::StoreConfig&)> tweak = kQuietSharded) {
    net::ClusterConfig cc;
    cc.num_nodes = kBenefactors + 1;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = replication;
    sc.store.maintenance = true;
    sc.store.heartbeat_misses = 3;
    if (tweak) tweak(sc.store);
    for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }
};

std::vector<uint8_t> Pattern(uint64_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

store::FileId WriteStoreFile(store::StoreClient& c, const std::string& name,
                             uint32_t chunks, const std::vector<uint8_t>& data,
                             sim::VirtualClock& clock) {
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < chunks; ++i) {
    EXPECT_TRUE(
        c.WriteChunkPages(clock, *id, i, all, {data.data() + i * kChunk, kChunk})
            .ok());
  }
  return *id;
}

void ExpectFullyReplicated(Rig& rig, store::FileId id, uint32_t chunks,
                           int replication) {
  sim::VirtualClock clock(0);
  auto locs = rig.store->manager().GetReadLocations(clock, id, 0, chunks);
  ASSERT_TRUE(locs.ok());
  for (uint32_t i = 0; i < chunks; ++i) {
    const store::ReadLocation& loc = (*locs)[i];
    std::set<int> distinct(loc.benefactors.begin(), loc.benefactors.end());
    EXPECT_EQ(distinct.size(), static_cast<size_t>(replication))
        << "chunk " << i;
    for (int b : loc.benefactors) {
      EXPECT_TRUE(rig.store->benefactor(static_cast<size_t>(b)).alive())
          << "chunk " << i << " on dead benefactor " << b;
    }
  }
}

// ---- partition sanity ----

TEST(MetaShardTest, ConfigReachesManagerAndKeysSpreadAcrossShards) {
  Rig rig(/*replication=*/1);
  store::Manager& m = rig.store->manager();
  ASSERT_EQ(m.meta_shards(), 4u);

  // A modest working set must not collapse onto one shard: the splitmix64
  // partition of ChunkKey has no reason to correlate with (file, index)
  // striding.  64 chunks over 4 shards — demand every shard is hit.
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  auto id = c.Create(clock, "/spread");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(c.Fallocate(clock, *id, 64 * kChunk).ok());
  auto locs = m.GetReadLocations(clock, *id, 0, 64);
  ASSERT_TRUE(locs.ok());
  std::vector<int> per_shard(4, 0);
  for (const store::ReadLocation& loc : *locs) {
    ++per_shard[store::ChunkKeyHash{}(loc.key) % 4];
  }
  for (int s = 0; s < 4; ++s) {
    EXPECT_GT(per_shard[s], 0) << "shard " << s << " never hit";
  }
}

// ---- one shard vs many: client-visible metadata must be identical ----

TEST(MetaShardTest, ShardCountInvisibleToMetadataResults) {
  // The same operation sequence — creates, cross-shard prepare/complete
  // batches, overwrites (version bumps), stat, refcounts, checksums —
  // must produce byte-identical metadata at meta_shards=1 and 4.  Only
  // the service-time model may differ.
  auto run = [](size_t shards, auto&& probe) {
    Rig rig(/*replication=*/2, [shards](store::StoreConfig& cfg) {
      kQuietSharded(cfg);
      cfg.meta_shards = shards;
    });
    store::StoreClient& c = rig.store->ClientForNode(0);
    store::Manager& m = rig.store->manager();
    sim::VirtualClock clock(0);
    const store::FileId a =
        WriteStoreFile(c, "/a", 6, Pattern(6 * kChunk, 91), clock);
    const store::FileId b =
        WriteStoreFile(c, "/b", 4, Pattern(4 * kChunk, 92), clock);
    // Overwrite a window of /a: in-place version bumps through the
    // prepare/complete fences, spanning all four shards.
    const std::vector<uint32_t> window = {0, 2, 3, 5};
    auto wl = m.PrepareWriteBatch(clock, a, window);
    ASSERT_TRUE(wl.ok());
    m.CompleteWrites(*wl);
    // Unlink /b and recreate a smaller file in its place.
    ASSERT_TRUE(m.Unlink(clock, b).ok());
    const store::FileId b2 =
        WriteStoreFile(c, "/b2", 2, Pattern(2 * kChunk, 93), clock);
    probe(rig, m, clock, a, b2);
  };

  struct Snapshot {
    std::vector<store::ChunkKey> keys;
    std::vector<std::vector<int>> replicas;
    std::vector<uint64_t> refcounts;
    std::vector<uint32_t> crcs;
    uint64_t a_size = 0, b2_size = 0;
  };
  auto capture = [](store::Manager& m, sim::VirtualClock& clock,
                    store::FileId a, store::FileId b2, Snapshot* s) {
    for (auto [id, chunks] : {std::pair{a, 6u}, std::pair{b2, 2u}}) {
      auto locs = m.GetReadLocations(clock, id, 0, chunks);
      ASSERT_TRUE(locs.ok());
      for (const store::ReadLocation& loc : *locs) {
        s->keys.push_back(loc.key);
        s->replicas.push_back(loc.benefactors);
        s->refcounts.push_back(m.ChunkRefcount(loc.key));
        uint32_t crc = 0;
        s->crcs.push_back(m.LookupChecksum(loc.key, &crc) ? crc : 0);
      }
    }
    auto sa = m.Stat(clock, a);
    auto sb = m.Stat(clock, b2);
    ASSERT_TRUE(sa.ok() && sb.ok());
    s->a_size = sa->size;
    s->b2_size = sb->size;
  };

  Snapshot one, four;
  run(1, [&](Rig& rig, store::Manager& m, sim::VirtualClock& clock,
             store::FileId a, store::FileId b2) {
    (void)rig;
    capture(m, clock, a, b2, &one);
  });
  run(4, [&](Rig& rig, store::Manager& m, sim::VirtualClock& clock,
             store::FileId a, store::FileId b2) {
    (void)rig;
    capture(m, clock, a, b2, &four);
  });
  ASSERT_EQ(one.keys.size(), four.keys.size());
  for (size_t i = 0; i < one.keys.size(); ++i) {
    EXPECT_EQ(one.keys[i], four.keys[i]) << "chunk " << i;
    EXPECT_EQ(one.replicas[i], four.replicas[i]) << "chunk " << i;
    EXPECT_EQ(one.refcounts[i], four.refcounts[i]) << "chunk " << i;
    EXPECT_EQ(one.crcs[i], four.crcs[i]) << "chunk " << i;
  }
  EXPECT_EQ(one.a_size, four.a_size);
  EXPECT_EQ(one.b2_size, four.b2_size);
}

// ---- PR-4 repair-engine races, re-run with the namespace sharded ----
//
// Same staged interleavings as maintenance_test.cpp, but with
// meta_shards=4 the fence, target registry, and epoch the engine must
// consult live on a different shard than most of the batch — a bookkeeping
// slip between shards would pass the single-shard versions and fail here.

TEST(MetaShardTest, WriteLandingDuringRepairCopyCannotCommitStaleBytes) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 21);
  const store::FileId id = WriteStoreFile(c, "/race", 1, v1, clock);

  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  ASSERT_EQ(loc0->benefactors.size(), 2u);
  const store::ChunkKey key = loc0->key;
  const int survivor = loc0->benefactors[0];
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto wloc = m.PrepareWrite(clock, id, 0);
  ASSERT_TRUE(wloc.ok());

  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  const int target = plans[0].targets[0];
  auto out = m.ExecuteRepairPlan(clock, plans[0]);
  ASSERT_EQ(out.written.size(), 1u);

  const auto v2 = Pattern(kChunk, 22);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  sim::VirtualClock wc(clock.now());
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(survivor))
                  .WritePages(wc, key, all, v2)
                  .ok());
  m.CompleteWrite(wloc->key);

  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 0u);
  EXPECT_TRUE(requeue);
  EXPECT_FALSE(
      rig.store->benefactor(static_cast<size_t>(target)).HasChunk(key));

  ASSERT_TRUE(m.RepairReplication(clock).ok());
  ExpectFullyReplicated(rig, id, 1, 2);
  auto healed = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(healed.ok());
  std::vector<uint8_t> got(kChunk);
  for (int b : healed->benefactors) {
    sim::VirtualClock rc(clock.now());
    ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(b))
                    .ReadChunk(rc, key, got)
                    .ok());
    EXPECT_EQ(got, v2) << "replica on benefactor " << b;
  }
}

TEST(MetaShardTest, OpenWriteFencesRepairCommit) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/fence", 1, Pattern(kChunk, 23), clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto wloc = m.PrepareWrite(clock, id, 0);
  ASSERT_TRUE(wloc.ok());
  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  auto out = m.ExecuteRepairPlan(clock, plans[0]);

  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 0u);
  EXPECT_TRUE(requeue);

  m.CompleteWrite(wloc->key);
  auto recreated = m.RepairReplication(clock);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 1u);
  ExpectFullyReplicated(rig, id, 1, 2);
}

TEST(MetaShardTest, ScrubSparesInFlightRepairTargets) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 24);
  const store::FileId id = WriteStoreFile(c, "/sc", 1, v1, clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  const auto target = static_cast<size_t>(plans[0].targets[0]);
  auto out = m.ExecuteRepairPlan(clock, plans[0]);
  ASSERT_TRUE(rig.store->benefactor(target).HasChunk(key));

  // The scrub walks ALL shards; the in-flight target registered on the
  // key's shard must exempt it everywhere.
  auto scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
  EXPECT_TRUE(rig.store->benefactor(target).HasChunk(key));

  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 1u);
  EXPECT_FALSE(requeue);
  ExpectFullyReplicated(rig, id, 1, 2);
  scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  std::vector<uint8_t> got(kChunk);
  sim::VirtualClock rc(clock.now());
  ASSERT_TRUE(rig.store->benefactor(target).ReadChunk(rc, key, got).ok());
  EXPECT_EQ(got, v1);
}

TEST(MetaShardTest, RacingRepairsSameTargetKeepThePublishedReplica) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 31);
  const store::FileId id = WriteStoreFile(c, "/dup", 1, v1, clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  int forced = -1, spare = -1;
  for (int b = 0; b < kBenefactors; ++b) {
    if (b == loc0->benefactors[0] || b == loc0->benefactors[1]) continue;
    (forced < 0 ? forced : spare) = b;
  }
  ASSERT_TRUE(
      rig.store->benefactor(static_cast<size_t>(spare)).ReserveChunks(16).ok());

  auto plansA = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  auto plansB = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plansA.size(), 1u);
  ASSERT_EQ(plansB.size(), 1u);
  ASSERT_EQ(plansA[0].targets, plansB[0].targets);
  const int target = plansA[0].targets[0];
  ASSERT_EQ(target, forced);

  auto outA = m.ExecuteRepairPlan(clock, plansA[0]);
  EXPECT_EQ(m.CommitRepair(outA), 1u);

  const uint64_t used_mid =
      rig.store->benefactor(static_cast<size_t>(target)).bytes_used();
  auto outB = m.ExecuteRepairPlan(clock, plansB[0]);
  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(outB, &requeue), 0u);
  EXPECT_TRUE(requeue);
  EXPECT_TRUE(
      rig.store->benefactor(static_cast<size_t>(target)).HasChunk(key));
  EXPECT_EQ(rig.store->benefactor(static_cast<size_t>(target)).bytes_used(),
            used_mid - kChunk);
  ExpectFullyReplicated(rig, id, 1, 2);

  auto recreated = m.RepairReplication(clock);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 0u);
  std::vector<uint8_t> got(kChunk);
  sim::VirtualClock rc(clock.now());
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(target))
                  .ReadChunk(rc, key, got)
                  .ok());
  EXPECT_EQ(got, v1);
  rig.store->benefactor(static_cast<size_t>(spare)).ReleaseChunkReservation(16);
  auto scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
}

TEST(MetaShardTest, LastSurvivorDeathBetweenPlanAndCopyRequeues) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/gone", 1, Pattern(kChunk, 41), clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  const auto target = static_cast<size_t>(plans[0].targets[0]);
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[0])).Kill();
  auto out = m.ExecuteRepairPlan(clock, plans[0]);
  EXPECT_TRUE(out.written.empty());
  EXPECT_EQ(out.failed.size(), 1u);

  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 0u);
  EXPECT_TRUE(requeue);
  EXPECT_FALSE(rig.store->benefactor(target).HasChunk(key));

  uint64_t lost = 0;
  EXPECT_TRUE(m.PlanRepairs(std::vector<store::ChunkKey>{key}, &lost).empty());
  EXPECT_EQ(lost, 1u);
}

TEST(MetaShardTest, FailedPrepareBatchLeavesNoRepairFence) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/batch", 1, Pattern(kChunk, 51), clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());

  const std::vector<uint32_t> indices = {0, 5};
  EXPECT_FALSE(m.PrepareWriteBatch(clock, id, indices).ok());

  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();
  auto recreated = m.RepairReplication(clock);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 1u);
  ExpectFullyReplicated(rig, id, 1, 2);
}

// ---- concurrency (runs under TSan via the `concurrency` label) ----

TEST(MetaShardConcurrencyTest, ParallelResolversAndWritersStayCoherent) {
  // Four resolver/writer threads per their own files plus one repair
  // driver hammering the same manager at meta_shards=4.  TSan guards the
  // lock-free snapshot loads against the publishing stores; the final
  // sweep demands the metadata survived intact.
  Rig rig(/*replication=*/2);
  store::Manager& m = rig.store->manager();
  constexpr int kThreads = 4;
  constexpr uint32_t kChunksPerFile = 8;
  constexpr int kRounds = 60;

  std::vector<store::FileId> files;
  {
    sim::VirtualClock clock(0);
    for (int t = 0; t < kThreads; ++t) {
      store::StoreClient& c = rig.store->ClientForNode(t);
      WriteStoreFile(c, "/mt" + std::to_string(t), kChunksPerFile,
                     Pattern(kChunksPerFile * kChunk, 100 + t), clock);
      auto id = m.LookupFile(clock, "/mt" + std::to_string(t));
      ASSERT_TRUE(id.ok());
      files.push_back(*id);
    }
  }

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      sim::VirtualClock clock(0);
      Xoshiro256 rng(0x5eed0 + t);
      std::vector<uint32_t> window = {0, 3, 5, 7};
      for (int r = 0; r < kRounds; ++r) {
        if (rng.NextBelow(3) == 0) {
          auto wl = m.PrepareWriteBatch(clock, files[t], window);
          ASSERT_TRUE(wl.ok());
          m.CompleteWrites(*wl);
        } else {
          // Resolve a random peer's file: readers cross writer shards.
          const store::FileId id = files[rng.NextBelow(kThreads)];
          auto locs = m.GetReadLocations(clock, id, 0, kChunksPerFile);
          ASSERT_TRUE(locs.ok());
          for (const store::ReadLocation& loc : *locs) {
            ASSERT_GE(loc.benefactors.size(), 1u);
          }
        }
      }
    });
  }
  // Concurrent repair driver: plans over whatever is degraded (usually
  // nothing — the point is it walks every shard while writers fence).
  workers.emplace_back([&] {
    sim::VirtualClock clock(0);
    for (int r = 0; r < kRounds / 4; ++r) {
      ASSERT_TRUE(m.RepairReplication(clock).ok());
    }
  });
  for (std::thread& w : workers) w.join();

  for (int t = 0; t < kThreads; ++t) {
    ExpectFullyReplicated(rig, files[t], kChunksPerFile, 2);
    sim::VirtualClock clock(0);
    for (uint32_t i = 0; i < kChunksPerFile; ++i) {
      EXPECT_GE(m.ChunkRefcount(
                    m.GetReadLocation(clock, files[t], i)->key),
                1u);
    }
  }
  auto scrub = m.ScrubOnce(sim::CurrentClock());
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
}

TEST(MetaShardConcurrencyTest, FallocateRacingScrubKeepsReservationsExact) {
  // Regression: Fallocate must reserve space and publish the chunk as one
  // step under the chunk's shard mutex.  It used to reserve before taking
  // any shard lock, so a concurrent ScrubOnce (holding every shard mutex)
  // could observe the in-flight reservation without its chunk, call it
  // drift, and release it — leaving the benefactor permanently
  // under-counted and a later Unlink's release free to underflow.
  Rig rig(/*replication=*/2);
  store::Manager& m = rig.store->manager();
  constexpr int kThreads = 4;
  constexpr int kFilesPerThread = 12;
  constexpr uint32_t kChunksPerFile = 8;
  const auto name = [](int t, int f) {
    return "/ra" + std::to_string(t) + "_" + std::to_string(f);
  };

  std::atomic<bool> done{false};
  std::atomic<uint64_t> racing_fixes{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      sim::VirtualClock clock(0);
      store::StoreClient& c = rig.store->ClientForNode(t);
      for (int f = 0; f < kFilesPerThread; ++f) {
        auto id = c.Create(clock, name(t, f));
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(c.Fallocate(clock, *id, kChunksPerFile * kChunk).ok());
      }
    });
  }
  std::thread scrubber([&] {
    sim::VirtualClock clock(0);
    while (!done.load(std::memory_order_relaxed)) {
      racing_fixes.fetch_add(m.ScrubOnce(clock).reservation_fixes,
                             std::memory_order_relaxed);
    }
  });
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_relaxed);
  scrubber.join();

  // No scrub may ever have seen drift: every reservation it could observe
  // was published with its chunk under the same shard-mutex hold.
  EXPECT_EQ(racing_fixes.load(), 0u);

  // Unlink everything: each release must be backed by a still-standing
  // reservation (an underflow trips NVM_CHECK inside ReleaseChunkReservation)
  // and the store must come back empty.
  sim::VirtualClock clock(0);
  for (int t = 0; t < kThreads; ++t) {
    for (int f = 0; f < kFilesPerThread; ++f) {
      auto id = m.LookupFile(clock, name(t, f));
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(m.Unlink(clock, *id).ok());
    }
  }
  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(static_cast<size_t>(b)).bytes_used(), 0u)
        << "benefactor " << b;
  }
  auto scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
}

}  // namespace
}  // namespace nvm

// Tests for the key=value Config parser and the nvmstat-style report.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hpp"
#include "store/report.hpp"

namespace nvm {
namespace {

TEST(ConfigTest, ParsesArgs) {
  auto c = Config::FromArgs({"workload=mm", "x=8", "ratio=0.25",
                             "remote=true", "cache=2M"});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetString("workload"), "mm");
  EXPECT_EQ(c->GetInt("x"), 8);
  EXPECT_DOUBLE_EQ(c->GetDouble("ratio"), 0.25);
  EXPECT_TRUE(c->GetBool("remote"));
  EXPECT_EQ(c->GetBytes("cache"), 2_MiB);
}

TEST(ConfigTest, Fallbacks) {
  Config c;
  EXPECT_EQ(c.GetString("missing", "d"), "d");
  EXPECT_EQ(c.GetInt("missing", 7), 7);
  EXPECT_EQ(c.GetBytes("missing", 42), 42u);
  EXPECT_FALSE(c.GetBool("missing"));
  EXPECT_TRUE(c.GetBool("missing", true));
}

TEST(ConfigTest, ByteSuffixes) {
  auto c = Config::FromArgs({"a=512", "b=64K", "c=2M", "d=1G", "e=1.5M"});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetBytes("a"), 512u);
  EXPECT_EQ(c->GetBytes("b"), 64_KiB);
  EXPECT_EQ(c->GetBytes("c"), 2_MiB);
  EXPECT_EQ(c->GetBytes("d"), 1_GiB);
  EXPECT_EQ(c->GetBytes("e"), 1536_KiB);
}

TEST(ConfigTest, BoolSpellings) {
  auto c = Config::FromArgs({"a=1", "b=true", "c=yes", "d=on", "e=0",
                             "f=false"});
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->GetBool("a"));
  EXPECT_TRUE(c->GetBool("b"));
  EXPECT_TRUE(c->GetBool("c"));
  EXPECT_TRUE(c->GetBool("d"));
  EXPECT_FALSE(c->GetBool("e"));
  EXPECT_FALSE(c->GetBool("f"));
}

TEST(ConfigTest, RejectsMalformedTokens) {
  EXPECT_FALSE(Config::FromArgs({"novalue"}).ok());
  EXPECT_FALSE(Config::FromArgs({"=value"}).ok());
}

TEST(ConfigTest, ParsesFileWithCommentsAndBlanks) {
  const std::string path = "/tmp/nvm_config_test.cfg";
  {
    std::ofstream out(path);
    out << "# an experiment\n"
        << "workload = sort\n"
        << "\n"
        << "nodes=8   # trailing comment\n";
  }
  auto c = Config::FromFile(path);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetString("workload"), "sort");
  EXPECT_EQ(c->GetInt("nodes"), 8);
  std::remove(path.c_str());
  EXPECT_EQ(Config::FromFile("/tmp/does_not_exist.cfg").status().code(),
            ErrorCode::kNotFound);
}

TEST(ReportTest, ReflectsStoreState) {
  net::ClusterConfig cc;
  cc.num_nodes = 3;
  net::Cluster cluster(cc);
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = 64_KiB;
  sc.benefactor_nodes = {1, 2};
  sc.contribution_bytes = 1_MiB;
  sc.manager_node = 1;
  store::AggregateStore st(cluster, sc);

  auto& client = st.ClientForNode(0);
  auto& clock = sim::CurrentClock();
  auto id = client.Create(clock, "/reportfile");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(client.Fallocate(clock, *id, 4 * 64_KiB).ok());
  st.benefactor(1).Kill();

  const std::string report = store::StatusReport(st);
  EXPECT_NE(report.find("DOWN"), std::string::npos);
  EXPECT_NE(report.find("1/2 benefactors up"), std::string::npos);
  EXPECT_NE(report.find("1 files"), std::string::npos);
  EXPECT_NE(report.find("256.0 KiB used"), std::string::npos);
}

}  // namespace
}  // namespace nvm

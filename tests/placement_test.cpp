// Tests for the shared placement engine: knob-off order preservation
// (the defaults must be byte- and virtual-time-identical to the historic
// capacity-only placement), the unified alive+min-free stripe-start
// filter across all three policies (all-full and all-dead edges), soft
// suspicion avoidance for striping/COW, hard suspicion and
// correlated-loss exclusion for repair targets, wear-band ranking, and
// the reservation lifecycle of zero-target and partial-target repair
// plans.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/placement.hpp"
#include "store/store.hpp"

namespace nvm::store {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;
constexpr int64_t kMs = 1'000'000;  // virtual ns per millisecond

PlacementCandidate Cand(int bid, bool alive, uint64_t bytes_free,
                        bool suspected = false, bool excluded = false,
                        double wear = 0.0, int node = -1) {
  PlacementCandidate c;
  c.bid = bid;
  c.alive = alive;
  c.suspected = suspected;
  c.excluded = excluded;
  c.bytes_free = bytes_free;
  c.wear = wear;
  c.node = node;
  return c;
}

// ---- engine unit tests ----

TEST(PlacementEngineTest, KnobOffRotationPreservesRegistryOrder) {
  std::vector<PlacementCandidate> cands;
  for (int b = 0; b < 5; ++b) {
    // Wildly different free space, suspicion and wear: with every knob
    // off none of it may perturb the rotation.
    cands.push_back(Cand(b, /*alive=*/true, /*bytes_free=*/100u * (5u - b),
                         /*suspected=*/b == 1, /*excluded=*/false,
                         /*wear=*/0.2 * b));
  }
  PlacementRequest req;
  req.order = PlacementRequest::Order::kRotation;
  req.start = 3;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{3, 4, 0, 1, 2}));
}

TEST(PlacementEngineTest, KnobOffLeastLoadedOrdersByFreeThenId) {
  std::vector<PlacementCandidate> cands = {
      Cand(0, true, 50), Cand(1, true, 200), Cand(2, true, 200),
      Cand(3, true, 75)};
  PlacementRequest req;
  req.order = PlacementRequest::Order::kLeastLoaded;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{1, 2, 3, 0}));
}

TEST(PlacementEngineTest, DeadAndExcludedNeverRanked) {
  std::vector<PlacementCandidate> cands = {
      Cand(0, /*alive=*/false, 500), Cand(1, true, 400),
      Cand(2, true, 300, /*suspected=*/false, /*excluded=*/true),
      Cand(3, true, 200)};
  PlacementRequest req;
  req.order = PlacementRequest::Order::kLeastLoaded;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{1, 3}));
}

TEST(PlacementEngineTest, SoftAvoidRanksSuspectedLastButKeepsThem) {
  std::vector<PlacementCandidate> cands = {
      Cand(0, true, 100, /*suspected=*/true), Cand(1, true, 100),
      Cand(2, true, 100, /*suspected=*/true), Cand(3, true, 100)};
  PlacementRequest req;
  req.order = PlacementRequest::Order::kRotation;
  req.start = 0;
  req.avoid_suspected = true;
  // Unsuspected first in rotation order, then the suspected ones, still
  // in rotation order — eligible, just last resort.
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{1, 3, 0, 2}));
}

TEST(PlacementEngineTest, HardExcludeDropsSuspectedEntirely) {
  std::vector<PlacementCandidate> cands = {
      Cand(0, true, 100, /*suspected=*/true), Cand(1, true, 100),
      Cand(2, true, 100, /*suspected=*/true), Cand(3, true, 100)};
  PlacementRequest req;
  req.order = PlacementRequest::Order::kLeastLoaded;
  req.avoid_suspected = true;
  req.exclude_suspected = true;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{1, 3}));
}

TEST(PlacementEngineTest, WearBandsBiasTowardFreshDevices) {
  // Worn device ranks behind fresh ones once the weighted band differs;
  // within a band the base order still decides.
  std::vector<PlacementCandidate> cands = {
      Cand(0, true, 100, false, false, /*wear=*/0.50),
      Cand(1, true, 100, false, false, /*wear=*/0.02),
      Cand(2, true, 100, false, false, /*wear=*/0.03)};
  PlacementRequest req;
  req.order = PlacementRequest::Order::kRotation;
  req.start = 0;
  req.wear_weight = 1.0;  // bands: floor(16*wear) -> {8, 0, 0}
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{1, 2, 0}));
  // Weight 0 never reads wear into the order.
  req.wear_weight = 0.0;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{0, 1, 2}));
}

TEST(PlacementEngineTest, StripeStartAppliesSameMinFreeFilterToAllPolicies) {
  // Benefactor 2 is the argmax-free but dead; benefactor 0 co-located
  // with the client but too full for one chunk.
  std::vector<PlacementCandidate> cands = {
      Cand(0, true, kChunk / 2, false, false, 0.0, /*node=*/7),
      Cand(1, true, 2 * kChunk, false, false, 0.0, /*node=*/1),
      Cand(2, /*alive=*/false, 100 * kChunk, false, false, 0.0, /*node=*/2),
      Cand(3, true, 5 * kChunk, false, false, 0.0, /*node=*/3)};
  // Round-robin: always the cursor (the reserve walk rotates from it).
  EXPECT_EQ(ChooseStripeStart(cands, StripePolicy::kRoundRobin, 1, 7, kChunk),
            1u);
  // Locality: the co-located benefactor cannot hold a chunk — fall back
  // to the cursor instead of steering every stripe at a full device.
  EXPECT_EQ(
      ChooseStripeStart(cands, StripePolicy::kLocalityAware, 1, 7, kChunk),
      1u);
  // Capacity-balanced: the dead argmax (bid 2) must not win; the best
  // ELIGIBLE candidate is bid 3.
  EXPECT_EQ(
      ChooseStripeStart(cands, StripePolicy::kCapacityBalanced, 0, 7, kChunk),
      3u);
  // All-full/all-dead: no eligible candidate -> the cursor comes back and
  // the caller's reserve scan fails cleanly.
  std::vector<PlacementCandidate> hopeless = {Cand(0, false, 100 * kChunk),
                                              Cand(1, true, kChunk - 1)};
  EXPECT_EQ(
      ChooseStripeStart(hopeless, StripePolicy::kCapacityBalanced, 1, -1,
                        kChunk),
      1u);
}

// ---- store-level rig ----

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<AggregateStore> store;

  explicit Rig(int replication, uint64_t contribution = 64_MiB,
               std::function<void(StoreConfig&)> tweak = {}) {
    net::ClusterConfig cc;
    cc.num_nodes = kBenefactors + 1;
    cluster = std::make_unique<net::Cluster>(cc);
    AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = replication;
    if (tweak) tweak(sc.store);
    for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = contribution;
    sc.manager_node = 1;
    store = std::make_unique<AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }

  MaintenanceService& ms() { return *store->maintenance(); }
};

// Fast maintenance cadence, as in maintenance_test: 1 ms heartbeats,
// 3 misses to declare, 20 ms scrubs.
void FastMaintenance(StoreConfig& s) {
  s.maintenance = true;
  s.heartbeat_period_ms = 1;
  s.heartbeat_misses = 3;
  s.scrub_period_ms = 20;
}

std::vector<uint8_t> Pattern(uint64_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

FileId WriteStoreFile(StoreClient& c, const std::string& name, uint32_t chunks,
                      const std::vector<uint8_t>& data,
                      sim::VirtualClock& clock) {
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < chunks; ++i) {
    EXPECT_TRUE(
        c.WriteChunkPages(clock, *id, i, all, {data.data() + i * kChunk, kChunk})
            .ok());
  }
  return *id;
}

// Put a benefactor into the suspected-but-alive window: kill it, let the
// detector miss two heartbeats (below the 3-miss declare threshold),
// revive it.  Until the next clean sweep resets the counter the detector
// still reports it suspected — exactly the flap window placement must
// steer around.
void MakeSuspected(Rig& rig, size_t bid) {
  rig.ms().RunUntil(rig.ms().now_ns());  // drain in-flight tick work
  const int64_t t0 = rig.ms().now_ns();
  rig.store->benefactor(bid).Kill();
  rig.ms().RunUntil(t0 + 2 * kMs);
  rig.store->benefactor(bid).Revive();
  ASSERT_EQ(rig.ms().stats().benefactors_declared_dead, 0u);
  ASSERT_GE(rig.ms().stats().benefactors_suspected, 1u);
}

// ---- satellite 1: unified stripe-start filter, all-dead / all-full ----

TEST(PlacementPolicyTest, FallocateAllDeadReturnsUnavailableNotOutOfSpace) {
  // Regression: with every benefactor dead the old fallback silently
  // started at the stale stripe cursor and the reserve walk's failure
  // surfaced as "out of space" — misdiagnosing a total outage as a
  // capacity problem.  Each policy must now say Unavailable.
  for (StripePolicy policy :
       {StripePolicy::kRoundRobin, StripePolicy::kLocalityAware,
        StripePolicy::kCapacityBalanced}) {
    Rig rig(/*replication=*/1, 64_MiB,
            [&](StoreConfig& s) { s.stripe_policy = policy; });
    StoreClient& c = rig.store->ClientForNode(0);
    sim::VirtualClock clock(0);
    for (int b = 0; b < kBenefactors; ++b) rig.store->benefactor(b).Kill();
    auto id = c.Create(clock, "/dead");
    ASSERT_TRUE(id.ok());
    Status s = c.Fallocate(clock, *id, 4 * kChunk);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kUnavailable)
        << "policy " << static_cast<int>(policy) << ": " << s.ToString();
    for (int b = 0; b < kBenefactors; ++b) {
      EXPECT_EQ(rig.store->benefactor(b).bytes_used(), 0u);
    }
  }
}

TEST(PlacementPolicyTest, FallocateAllFullFailsCleanlyWithExactReservations) {
  // Two chunks of room per benefactor.  Filling the store and asking for
  // one more must fail as out-of-space (the benefactors are up!) and the
  // failed call may not leak a single reserved byte — freeing a file must
  // make the next allocation succeed again.
  for (StripePolicy policy :
       {StripePolicy::kRoundRobin, StripePolicy::kLocalityAware,
        StripePolicy::kCapacityBalanced}) {
    Rig rig(/*replication=*/1, /*contribution=*/2 * kChunk,
            [&](StoreConfig& s) { s.stripe_policy = policy; });
    StoreClient& c = rig.store->ClientForNode(0);
    sim::VirtualClock clock(0);
    auto full = c.Create(clock, "/full");
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(c.Fallocate(clock, *full, kBenefactors * 2 * kChunk).ok());

    auto extra = c.Create(clock, "/extra");
    ASSERT_TRUE(extra.ok());
    Status s = c.Fallocate(clock, *extra, kChunk);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kOutOfSpace)
        << "policy " << static_cast<int>(policy) << ": " << s.ToString();
    for (int b = 0; b < kBenefactors; ++b) {
      EXPECT_EQ(rig.store->benefactor(b).bytes_used(), 2 * kChunk)
          << "benefactor " << b;
    }

    ASSERT_TRUE(c.Unlink(clock, *full).ok());
    EXPECT_TRUE(c.Fallocate(clock, *extra, kChunk).ok());
  }
}

TEST(PlacementPolicyTest, CapacityBalancedStartSkipsDeadArgmax) {
  // Regression: kCapacityBalanced picked the argmax-free benefactor with
  // no alive/min-free filter, so the emptiest DEAD benefactor could win
  // the start slot and rotation from there handed the chunk to whoever
  // happened to sit next in the registry.  The start must now be the
  // emptiest ELIGIBLE benefactor.
  Rig rig(/*replication=*/1, 64_MiB, [](StoreConfig& s) {
    s.stripe_policy = StripePolicy::kCapacityBalanced;
  });
  StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  // Load benefactors unevenly: 3 chunks land on the three most-free in
  // turn, then pin extra load so the free ordering is 3 > 2 > 1 > 0.
  auto pin = c.Create(clock, "/pin");
  ASSERT_TRUE(pin.ok());
  ASSERT_TRUE(c.Fallocate(clock, *pin, 6 * kChunk).ok());
  std::vector<uint64_t> used(kBenefactors);
  for (int b = 0; b < kBenefactors; ++b) {
    used[b] = rig.store->benefactor(b).bytes_used();
  }
  // Kill the emptiest benefactor; the next chunk must land on the
  // emptiest SURVIVOR, not wherever the dead argmax's rotation pointed.
  size_t emptiest = 0, runner_up = 0;
  uint64_t best = UINT64_MAX;
  for (int b = 0; b < kBenefactors; ++b) {
    if (used[b] < best) {
      best = used[b];
      emptiest = static_cast<size_t>(b);
    }
  }
  best = UINT64_MAX;
  for (int b = 0; b < kBenefactors; ++b) {
    if (static_cast<size_t>(b) != emptiest && used[b] < best) {
      best = used[b];
      runner_up = static_cast<size_t>(b);
    }
  }
  rig.store->benefactor(emptiest).Kill();
  auto id = c.Create(clock, "/one");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(c.Fallocate(clock, *id, kChunk).ok());
  EXPECT_EQ(rig.store->benefactor(runner_up).bytes_used(), best + kChunk);
}

// ---- knob-off identity pin ----

// A placement-heavy sequence (striping across policies' default, COW via
// a checkpoint link, a benefactor death plus synchronous re-replication,
// reads of everything) with a bytes + virtual-time fingerprint.
struct IdentityRun {
  int64_t final_ns = 0;
  std::map<std::string, std::vector<std::vector<uint8_t>>> bytes;
};

IdentityRun RunIdentitySequence(std::function<void(StoreConfig&)> tweak) {
  IdentityRun out;
  Rig rig(/*replication=*/2, 64_MiB, std::move(tweak));
  StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  Xoshiro256 rng(0x9e3779b9);

  std::map<std::string, FileId> ids;
  std::map<std::string, std::vector<std::vector<uint8_t>>> files;
  for (int f = 0; f < 3; ++f) {
    const std::string name = "/pid" + std::to_string(f);
    std::vector<std::vector<uint8_t>> chunks;
    for (int i = 0; i < 4; ++i) chunks.push_back(Pattern(kChunk, rng.Next()));
    std::vector<uint8_t> flat;
    for (const auto& ch : chunks) flat.insert(flat.end(), ch.begin(), ch.end());
    ids[name] = WriteStoreFile(c, name, 4, flat, clock);
    files[name] = std::move(chunks);
  }
  // COW: link a checkpoint, overwrite a shared chunk.
  auto link = c.Create(clock, "/pid0.ckpt");
  EXPECT_TRUE(link.ok());
  EXPECT_TRUE(c.LinkFileChunks(clock, *link, ids["/pid0"]).ok());
  ids["/pid0.ckpt"] = *link;
  files["/pid0.ckpt"] = files["/pid0"];
  files["/pid0"][1] = Pattern(kChunk, rng.Next());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  EXPECT_TRUE(c.WriteChunkPages(clock, ids["/pid0"], 1, all,
                                {files["/pid0"][1].data(), kChunk})
                  .ok());
  // Repair placement: one benefactor dies, re-replicate synchronously.
  rig.store->benefactor(2).Kill();
  rig.store->manager().MarkDead(2);
  uint64_t lost = 0;
  auto repaired = rig.store->manager().RepairReplication(clock, &lost);
  EXPECT_TRUE(repaired.ok());
  EXPECT_EQ(lost, 0u);

  std::vector<uint8_t> buf(kChunk);
  for (const auto& [name, chunks] : files) {
    auto& got = out.bytes[name];
    for (uint32_t i = 0; i < chunks.size(); ++i) {
      EXPECT_TRUE(c.ReadChunk(clock, ids[name], i, buf).ok());
      got.emplace_back(buf);
      EXPECT_EQ(buf, chunks[i]) << name << " chunk " << i;
    }
  }
  out.final_ns = clock.now();
  return out;
}

TEST(PlacementIdentityTest, KnobsOffIsByteAndVirtualTimeIdenticalToDefault) {
  // The placement knobs default to off...
  StoreConfig defaults;
  EXPECT_FALSE(defaults.placement_avoid_suspected);
  EXPECT_EQ(defaults.placement_wear_weight, 0.0);
  EXPECT_FALSE(defaults.placement_aware());

  // ...and a default-config run is deterministic and bit-identical —
  // in both content and virtual time — to one with the knobs forced off,
  // pinning the engine's knob-off path to the historic placement.
  const IdentityRun def = RunIdentitySequence({});
  const IdentityRun def2 = RunIdentitySequence({});
  const IdentityRun off = RunIdentitySequence([](StoreConfig& s) {
    s.placement_avoid_suspected = false;
    s.placement_wear_weight = 0.0;
  });
  EXPECT_EQ(def.final_ns, def2.final_ns);
  EXPECT_EQ(def.bytes, def2.bytes);
  EXPECT_EQ(def.final_ns, off.final_ns);
  EXPECT_EQ(def.bytes, off.bytes);
}

// ---- repair targeting: suspicion + correlated loss ----

TEST(PlacementRepairTest, RepairNeverTargetsSuspectedBenefactor) {
  Rig rig(/*replication=*/2, 64_MiB, [](StoreConfig& s) {
    FastMaintenance(s);
    s.placement_avoid_suspected = true;
  });
  StoreClient& c = rig.store->ClientForNode(0);
  Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 8;
  FileId id =
      WriteStoreFile(c, "/sus", kChunks, Pattern(kChunks * kChunk, 5), clock);

  // Benefactor 1 enters the suspected-but-alive flap window.
  constexpr int kSuspect = 1;
  ASSERT_NO_FATAL_FAILURE(MakeSuspected(rig, kSuspect));

  // Replicas on Y before the failure, per chunk: repair may never ADD a
  // replica on the suspect, but pre-existing ones legitimately stay.
  std::vector<bool> had_suspect(kChunks, false);
  for (uint32_t i = 0; i < kChunks; ++i) {
    auto loc = m.GetReadLocation(clock, id, i);
    ASSERT_TRUE(loc.ok());
    for (int b : loc->benefactors) {
      if (b == kSuspect) had_suspect[i] = true;
    }
  }

  // A different benefactor really dies; plan the re-replication directly
  // (the background service is idle — nothing ticks it here).
  constexpr int kDead = 3;
  rig.store->benefactor(kDead).Kill();
  m.MarkDead(kDead);
  uint64_t lost = 0;
  auto keys = m.CollectUnderReplicated();
  ASSERT_FALSE(keys.empty());
  auto plans = m.PlanRepairs(keys, &lost);
  ASSERT_EQ(lost, 0u);
  ASSERT_FALSE(plans.empty());
  for (const auto& plan : plans) {
    EXPECT_FALSE(plan.incomplete);
    ASSERT_EQ(plan.targets.size(), 1u);
    // The hard exclusion: a flapping node must never receive the new
    // protective copy, and the dead node obviously can't.
    EXPECT_NE(plan.targets[0], kSuspect);
    EXPECT_NE(plan.targets[0], kDead);
    for (int s : plan.survivors) EXPECT_NE(plan.targets[0], s);
    bool requeue = false;
    auto outcome = m.ExecuteRepairPlan(clock, plan);
    EXPECT_EQ(m.CommitRepair(outcome, &requeue), 1u);
    EXPECT_FALSE(requeue);
  }
  for (uint32_t i = 0; i < kChunks; ++i) {
    auto loc = m.GetReadLocation(clock, id, i);
    ASSERT_TRUE(loc.ok());
    std::set<int> distinct(loc->benefactors.begin(), loc->benefactors.end());
    EXPECT_EQ(distinct.size(), 2u) << "chunk " << i;
    EXPECT_FALSE(distinct.contains(kDead)) << "chunk " << i;
    if (!had_suspect[i]) {
      EXPECT_FALSE(distinct.contains(kSuspect))
          << "repair added a replica on the suspected benefactor, chunk " << i;
    }
  }
}

TEST(PlacementRepairTest, RepairNeverTargetsCorruptSourceBenefactor) {
  // Correlated-loss exclusion: the benefactor that served a corrupt copy
  // of a chunk is not an eligible repair target for that same chunk —
  // even when that makes the plan incomplete — until a completed
  // overwrite refreshes the chunk's bytes and clears the taint.
  Rig rig(/*replication=*/2, 64_MiB, [](StoreConfig& s) {
    s.placement_avoid_suspected = true;
  });
  StoreClient& c = rig.store->ClientForNode(0);
  Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 7);
  FileId id = WriteStoreFile(c, "/taint", 1, data, clock);

  auto loc = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->benefactors.size(), 2u);
  const int rotten = loc->benefactors[0];
  const int survivor = loc->benefactors[1];
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(rotten))
                  .CorruptChunk(loc->key, /*byte_offset=*/11, /*xor_mask=*/0x20)
                  .ok());
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());  // failover + quarantine
  EXPECT_EQ(got, data);
  ASSERT_EQ(m.corrupt_detected(), 1u);

  // Leave the tainted benefactor as the ONLY candidate with room: with
  // everyone else dead the plan must come back empty-and-incomplete
  // rather than re-protect the chunk on the device that just rotted it —
  // and the aborted plan may not leak a reserved byte.
  std::vector<uint64_t> used_before(kBenefactors);
  for (int b = 0; b < kBenefactors; ++b) {
    if (b != rotten && b != survivor) rig.store->benefactor(b).Kill();
    used_before[b] = rig.store->benefactor(b).bytes_used();
  }
  auto keys = m.CollectUnderReplicated();
  ASSERT_EQ(keys.size(), 1u);
  auto plans = m.PlanRepairs(keys);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_TRUE(plans[0].incomplete);
  EXPECT_TRUE(plans[0].targets.empty());
  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), used_before[b])
        << "zero-target plan leaked a reservation on benefactor " << b;
  }

  // A completed overwrite lays down fresh verified bytes and clears the
  // correlated-loss memory: the same benefactor becomes eligible again
  // and heals the chunk back to full replication.
  const auto fresh = Pattern(kChunk, 8);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  ASSERT_TRUE(
      c.WriteChunkPages(clock, id, 0, all, {fresh.data(), kChunk}).ok());
  keys = m.CollectUnderReplicated();
  ASSERT_EQ(keys.size(), 1u);
  plans = m.PlanRepairs(keys);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_FALSE(plans[0].incomplete);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  EXPECT_EQ(plans[0].targets[0], rotten);
  bool requeue = false;
  auto outcome = m.ExecuteRepairPlan(clock, plans[0]);
  EXPECT_EQ(m.CommitRepair(outcome, &requeue), 1u);
  EXPECT_FALSE(requeue);
  auto healed = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(healed.ok());
  std::set<int> distinct(healed->benefactors.begin(),
                         healed->benefactors.end());
  EXPECT_EQ(distinct, (std::set<int>{rotten, survivor}));
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_EQ(got, fresh);
}

TEST(PlacementRepairTest, KnobOffRepairMayTargetCorruptSource) {
  // The exclusion is strictly opt-in: with the knob off the historic
  // least-loaded placement stands, and in this corner the corrupt-source
  // benefactor — the only one with room — is exactly who gets the copy.
  Rig rig(/*replication=*/2);
  StoreClient& c = rig.store->ClientForNode(0);
  Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 9);
  FileId id = WriteStoreFile(c, "/off", 1, data, clock);

  auto loc = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  const int rotten = loc->benefactors[0];
  const int survivor = loc->benefactors[1];
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(rotten))
                  .CorruptChunk(loc->key, 3, 0x01)
                  .ok());
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  for (int b = 0; b < kBenefactors; ++b) {
    if (b != rotten && b != survivor) rig.store->benefactor(b).Kill();
  }
  auto plans = m.PlanRepairs(m.CollectUnderReplicated());
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_FALSE(plans[0].incomplete);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  EXPECT_EQ(plans[0].targets[0], rotten);
}

// ---- COW placement under suspicion ----

TEST(PlacementCowTest, CowDropsSuspectedHolderButKeepsAtLeastOne) {
  Rig rig(/*replication=*/2, 64_MiB, [](StoreConfig& s) {
    FastMaintenance(s);
    s.placement_avoid_suspected = true;
  });
  StoreClient& c = rig.store->ClientForNode(0);
  Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 21);
  FileId id = WriteStoreFile(c, "/cow", 1, v1, clock);
  auto ckpt = c.Create(clock, "/cow.ckpt");
  ASSERT_TRUE(ckpt.ok());
  ASSERT_TRUE(c.LinkFileChunks(clock, *ckpt, id).ok());

  auto before = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->benefactors.size(), 2u);
  const int keep = before->benefactors[0];
  const int flappy = before->benefactors[1];
  ASSERT_NO_FATAL_FAILURE(
      MakeSuspected(rig, static_cast<size_t>(flappy)));

  // The overwrite COWs (the chunk is shared with the checkpoint); the
  // fresh version must drop the flapping holder and carry on degraded
  // with the healthy one — scrub re-protects it later.
  const auto v2 = Pattern(kChunk, 22);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  ASSERT_TRUE(c.WriteChunkPages(clock, id, 0, all, {v2.data(), kChunk}).ok());
  auto after = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->benefactors, (std::vector<int>{keep}));
  // The checkpoint's shared version is untouched.
  auto ck = m.GetReadLocation(clock, *ckpt, 0);
  ASSERT_TRUE(ck.ok());
  std::set<int> ck_set(ck->benefactors.begin(), ck->benefactors.end());
  EXPECT_EQ(ck_set, (std::set<int>{keep, flappy}));
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_EQ(got, v2);
  ASSERT_TRUE(c.ReadChunk(clock, *ckpt, 0, got).ok());
  EXPECT_EQ(got, v1);

  // Once the flap window clears, background maintenance heals the
  // degraded fresh version back to full replication.
  rig.ms().RunUntil(rig.ms().now_ns() + 100 * kMs);
  ASSERT_TRUE(rig.ms().QueueEmpty());
  auto healed = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(healed.ok());
  std::set<int> distinct(healed->benefactors.begin(),
                         healed->benefactors.end());
  EXPECT_EQ(distinct.size(), 2u);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_EQ(got, v2);

  // When EVERY holder is suspected the filter must keep them all: a
  // degraded-but-present replica set always beats an empty one.
  auto ckpt2 = c.Create(clock, "/cow.ckpt2");
  ASSERT_TRUE(ckpt2.ok());
  ASSERT_TRUE(c.LinkFileChunks(clock, *ckpt2, id).ok());
  auto shared = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(shared.ok());
  rig.ms().RunUntil(rig.ms().now_ns());
  const int64_t t0 = rig.ms().now_ns();
  for (int b : shared->benefactors) {
    rig.store->benefactor(static_cast<size_t>(b)).Kill();
  }
  rig.ms().RunUntil(t0 + 2 * kMs);
  for (int b : shared->benefactors) {
    rig.store->benefactor(static_cast<size_t>(b)).Revive();
  }
  const auto v3 = Pattern(kChunk, 23);
  ASSERT_TRUE(c.WriteChunkPages(clock, id, 0, all, {v3.data(), kChunk}).ok());
  auto still = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(still.ok());
  std::set<int> still_set(still->benefactors.begin(), still->benefactors.end());
  std::set<int> shared_set(shared->benefactors.begin(),
                           shared->benefactors.end());
  EXPECT_EQ(still_set, shared_set);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_EQ(got, v3);
}

// ---- satellite 2: repair reservation lifecycle under racing scrub ----

TEST(PlacementRepairTest, PartialPlanReservationsAreExactAfterCommit) {
  // Replication 3 with two of four benefactors dead: each plan needs two
  // targets but only one candidate exists.  The partial plan must
  // reserve exactly what it publishes — commit the one copy, requeue the
  // chunk, and leak nothing when the file is freed.
  Rig rig(/*replication=*/3);
  StoreClient& c = rig.store->ClientForNode(0);
  Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 4;
  FileId id = WriteStoreFile(c, "/part", kChunks,
                             Pattern(kChunks * kChunk, 31), clock);

  // Each chunk lives on 3 of 4 benefactors.  Kill two: every chunk loses
  // at least one replica, and at most one target candidate survives.
  rig.store->benefactor(0).Kill();
  m.MarkDead(0);
  rig.store->benefactor(1).Kill();
  m.MarkDead(1);
  uint64_t lost = 0;
  auto plans = m.PlanRepairs(m.CollectUnderReplicated(), &lost);
  ASSERT_EQ(lost, 0u);
  ASSERT_FALSE(plans.empty());
  uint64_t recreated = 0;
  for (const auto& plan : plans) {
    // Survivors ⊆ {2,3}; a chunk that kept both has no work, one that
    // kept a single survivor gets a partial plan: one target, still
    // short of replication 3.
    ASSERT_LE(plan.targets.size(), 1u);
    EXPECT_TRUE(plan.incomplete);
    bool requeue = false;
    auto outcome = m.ExecuteRepairPlan(clock, plan);
    recreated += m.CommitRepair(outcome, &requeue);
    // Every planned target published: the commit itself does not requeue
    // — a capacity shortfall is not retryable until capacity returns, so
    // the scrub's under-replication sweep re-queues it later instead
    // (requeuing here would livelock the drain loop).
    EXPECT_FALSE(requeue);
  }
  EXPECT_GT(recreated, 0u);

  // Exact accounting: the survivors hold one reservation per chunk each,
  // no more (nothing double-reserved by the partial plans), and teardown
  // returns every benefactor to zero (an unbacked release would trip the
  // underflow check inside the benefactor).
  for (int b = 2; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), kChunks * kChunk)
        << "benefactor " << b;
  }
  ASSERT_TRUE(c.Unlink(clock, id).ok());
  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), 0u) << "benefactor " << b;
  }
}

TEST(PlacementRepairTest, RepairStormRacingScrubAndWritersLeaksNothing) {
  // The reservation lifecycle under fire: writers allocate and free
  // files, a repair driver replans over a real benefactor death, and a
  // scrubber sweeps all shards — all concurrently.  Whatever interleaves,
  // the end state must be drift-free and tear down to zero.
  Rig rig(/*replication=*/2);
  Manager& m = rig.store->manager();
  constexpr int kThreads = 3;
  constexpr int kFilesPerThread = 8;
  constexpr uint32_t kChunksPerFile = 6;
  const auto name = [](int t, int f) {
    return "/storm" + std::to_string(t) + "_" + std::to_string(f);
  };

  // Seed some replicated state, then kill a benefactor so the repair
  // driver has genuine re-replication to race against the others.
  {
    sim::VirtualClock clock(0);
    StoreClient& c = rig.store->ClientForNode(0);
    for (int f = 0; f < kFilesPerThread; ++f) {
      auto id = c.Create(clock, name(kThreads, f));
      ASSERT_TRUE(id.ok());
      ASSERT_TRUE(c.Fallocate(clock, *id, kChunksPerFile * kChunk).ok());
    }
  }
  rig.store->benefactor(3).Kill();
  m.MarkDead(3);

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      sim::VirtualClock clock(0);
      StoreClient& c = rig.store->ClientForNode(t);
      for (int f = 0; f < kFilesPerThread; ++f) {
        auto id = c.Create(clock, name(t, f));
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(c.Fallocate(clock, *id, kChunksPerFile * kChunk).ok());
        if (f % 2 == 1) {
          ASSERT_TRUE(c.Unlink(clock, *id).ok());
        }
      }
    });
  }
  workers.emplace_back([&] {
    sim::VirtualClock clock(0);
    for (int r = 0; r < 6; ++r) {
      ASSERT_TRUE(m.RepairReplication(clock).ok());
    }
  });
  std::thread scrubber([&] {
    sim::VirtualClock clock(0);
    while (!done.load(std::memory_order_relaxed)) {
      m.ScrubOnce(clock);
    }
  });
  for (std::thread& w : workers) w.join();
  done.store(true, std::memory_order_relaxed);
  scrubber.join();

  // Converge any stragglers the racing drivers requeued, then demand the
  // exact end state: full replication on survivors and zero drift.
  sim::VirtualClock clock(0);
  ASSERT_TRUE(m.RepairReplication(clock).ok());
  auto scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
  for (int t = 0; t <= kThreads; ++t) {
    for (int f = 0; f < kFilesPerThread; ++f) {
      auto id = m.LookupFile(clock, name(t, f));
      if (!id.ok()) continue;  // unlinked by its writer
      ASSERT_TRUE(m.Unlink(clock, *id).ok());
    }
  }
  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), 0u) << "benefactor " << b;
  }
  auto final_scrub = m.ScrubOnce(clock);
  EXPECT_EQ(final_scrub.orphans_deleted, 0u);
  EXPECT_EQ(final_scrub.reservation_fixes, 0u);
}

// ---- wear-aware striping end to end ----

TEST(PlacementWearTest, WearWeightSteersStripesOffWornDevice) {
  // Pre-age one benefactor's SSD far past the others, then allocate with
  // the wear knob on: new stripes must avoid the worn device while the
  // fresh ones still have room, and knob-off must keep ignoring wear.
  for (const bool aware : {false, true}) {
    Rig rig(/*replication=*/1, 64_MiB, [&](StoreConfig& s) {
      s.placement_wear_weight = aware ? 8.0 : 0.0;
    });
    StoreClient& c = rig.store->ClientForNode(0);
    sim::VirtualClock clock(0);
    // Age benefactor 0: hammer one erase block on a throwaway clock until
    // its wear fraction dominates every band the weight can resolve.
    sim::SsdDevice& worn = rig.store->benefactor(0).ssd();
    sim::VirtualClock aging(0);
    while (worn.wear_fraction() < 0.5) {
      worn.ChargeWrite(aging, 0, sim::SsdDevice::kEraseBlockBytes);
    }
    auto id = c.Create(clock, "/wear");
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(c.Fallocate(clock, *id, 8 * kChunk).ok());
    if (aware) {
      EXPECT_EQ(rig.store->benefactor(0).bytes_used(), 0u)
          << "wear-aware striping placed a stripe on the worn device";
    } else {
      EXPECT_EQ(rig.store->benefactor(0).bytes_used(), 2 * kChunk)
          << "knob-off striping must ignore wear";
    }
  }
}

// ---- per-call exclude set ----

TEST(PlacementEngineTest, ExcludeNodesDropsCoResidentCandidatesHard) {
  // One request can demand distinct failure domains: every candidate on
  // an excluded node drops entirely (hard, like dead), while candidates
  // with an unknown node (-1) are never excluded by the node filter.
  std::vector<PlacementCandidate> cands = {
      Cand(0, true, 400, false, false, 0.0, /*node=*/1),
      Cand(1, true, 300, false, false, 0.0, /*node=*/2),
      Cand(2, true, 200, false, false, 0.0, /*node=*/1),
      Cand(3, true, 100, false, false, 0.0, /*node=*/-1)};
  PlacementRequest req;
  req.order = PlacementRequest::Order::kLeastLoaded;
  std::vector<int> exclude = {1, 5};
  req.exclude_nodes = &exclude;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{1, 3}));
  // No exclude set: nothing drops and the base order is untouched.
  req.exclude_nodes = nullptr;
  EXPECT_EQ(RankPlacement(cands, req), (std::vector<int>{0, 1, 2, 3}));
}

// ---- erasure anti-affinity: hard node-level fragment spreading ----

// Erasure rigs need their own benefactor->node map: the spread rule is
// about failure domains, so the tests below control co-residency.
struct EcRig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<AggregateStore> store;

  explicit EcRig(std::vector<int> benefactor_nodes,
                 uint64_t contribution = 64_MiB) {
    net::ClusterConfig cc;
    int max_node = 0;
    for (int n : benefactor_nodes) max_node = std::max(max_node, n);
    cc.num_nodes = max_node + 1;
    cluster = std::make_unique<net::Cluster>(cc);
    AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 1;
    sc.store.redundancy = RedundancyMode::kErasure;
    sc.store.ec_k = 4;
    sc.store.ec_m = 2;
    sc.benefactor_nodes = std::move(benefactor_nodes);
    sc.contribution_bytes = contribution;
    sc.manager_node = 1;
    store = std::make_unique<AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }
};

TEST(PlacementEcTest, StripeNeverCoLocatesUnderCapacityPressure) {
  // Six benefactors on six nodes — exactly enough domains for RS(4,2).
  // Fill one benefactor to the brim: five domains with room is NOT a
  // stripe, and the placement may not quietly put two fragments on one
  // of the survivors.  The allocation fails Unavailable (adding capacity
  // to an existing domain cannot help) without leaking a reserved byte,
  // and succeeds again the moment the sixth domain has room.
  EcRig rig({1, 2, 3, 4, 5, 6});
  StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const uint64_t frag = rig.store->manager().config().ec_frag_bytes();
  const uint64_t contribution = 64_MiB;
  ASSERT_TRUE(rig.store->benefactor(0).ReserveBytes(contribution).ok());

  auto id = c.Create(clock, "/spread");
  ASSERT_TRUE(id.ok());
  Status s = c.Fallocate(clock, *id, kChunk);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable) << s.ToString();
  for (size_t b = 1; b < 6; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), 0u) << "benefactor " << b;
  }

  rig.store->benefactor(0).ReleaseBytes(contribution);
  ASSERT_TRUE(c.Fallocate(clock, *id, kChunk).ok());
  auto loc = rig.store->manager().GetReadLocation(clock, *id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(loc->ec);
  std::set<int> bids(loc->benefactors.begin(), loc->benefactors.end());
  EXPECT_EQ(bids.size(), 6u) << "stripe co-locates fragments";
  for (size_t b = 0; b < 6; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), frag)
        << "benefactor " << b;
  }
}

TEST(PlacementEcTest, CoResidentBenefactorsAreOneFailureDomain) {
  // Six benefactors but two share a node: five failure domains.  All six
  // have oceans of space, yet a 4+2 stripe must refuse to place — a node
  // loss would cost two fragments of the same stripe.
  EcRig shared({1, 2, 3, 4, 5, 5});
  StoreClient& c = shared.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  auto id = c.Create(clock, "/domains");
  ASSERT_TRUE(id.ok());
  Status s = c.Fallocate(clock, *id, kChunk);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable) << s.ToString();
  for (size_t b = 0; b < 6; ++b) {
    EXPECT_EQ(shared.store->benefactor(b).bytes_used(), 0u)
        << "benefactor " << b;
  }

  // Control: the same shape on six distinct nodes places one fragment
  // per node.
  EcRig spread({1, 2, 3, 4, 5, 6});
  StoreClient& c2 = spread.store->ClientForNode(0);
  auto id2 = c2.Create(clock, "/domains");
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(c2.Fallocate(clock, *id2, kChunk).ok());
  auto loc = spread.store->manager().GetReadLocation(clock, *id2, 0);
  ASSERT_TRUE(loc.ok());
  std::set<int> nodes;
  for (int b : loc->benefactors) {
    nodes.insert(spread.store->benefactor(static_cast<size_t>(b)).node_id());
  }
  EXPECT_EQ(nodes.size(), loc->benefactors.size())
      << "two fragments share a node";
}

}  // namespace
}  // namespace nvm::store

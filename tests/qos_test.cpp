// Scheduler-fairness suite for the multi-tenant QoS scheduler:
// starvation-freedom (the effective-rate floor bounds any tenant's
// admission delay), work-conservation (a lone tenant is never slowed —
// which also makes single-tenant qos=on byte- and virtual-time-identical
// to qos=off), weight ratios honored within tolerance on a saturated
// lane, the guaranteed-share delay bound, and the qos=off identity pin
// (a store with QoS compiled in but disabled produces exactly the same
// virtual timeline and device traffic as one that never heard of QoS).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/qos.hpp"
#include "store/store.hpp"

namespace nvm {
namespace {

using store::kTenantForeground;
using store::kTenantMaintenance;
using store::LatencyHistogram;
using store::QosScheduler;
using store::QosStats;
using store::QosTenant;
using store::StoreConfig;
using store::TenantId;

constexpr int64_t kUs = 1'000;
constexpr int64_t kMs = 1'000'000;
constexpr auto kSsd = QosScheduler::Lane::kSsd;

StoreConfig QosConfig(std::vector<QosTenant> tenants, bool on = true) {
  StoreConfig cfg;
  cfg.qos = on;
  cfg.qos_tenants = std::move(tenants);
  return cfg;
}

TEST(QosSchedulerTest, OffIsPassThrough) {
  QosScheduler qos(QosConfig({{0, 1.0, 0.1, 1}, {2, 1.0, 0.9, 2}},
                             /*on=*/false),
                   230.0);
  EXPECT_FALSE(qos.enabled());
  // Even a pattern that would saturate the lane admits instantly.
  for (int i = 0; i < 100; ++i) {
    const int64_t now = i * kUs;
    EXPECT_EQ(qos.Admit(kSsd, 0, 0, 500 * kUs, now), now);
    EXPECT_EQ(qos.Admit(kSsd, 0, 2, 500 * kUs, now), now);
  }
}

TEST(QosSchedulerTest, LoneTenantIsNeverDelayed) {
  // Work conservation: with nobody else on the lane, admission is free —
  // qos=on with one tenant is identical to qos=off.
  QosScheduler qos(QosConfig({{0, 1.0, 0.25, 1}}), 230.0);
  ASSERT_TRUE(qos.enabled());
  int64_t now = 0;
  for (int i = 0; i < 1000; ++i) {
    // Far more demand than a 25% share could ever cover.
    EXPECT_EQ(qos.Admit(kSsd, 0, 0, 10 * kMs, now), now);
    now += kUs;
  }
  const QosStats stats = qos.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].delayed, 0u);
}

TEST(QosSchedulerTest, ContentionWindowExpires) {
  StoreConfig cfg = QosConfig({{0, 1.0, 0.1, 1}, {2, 1.0, 0.1, 1}});
  cfg.qos_window_ms = 4;
  QosScheduler qos(cfg, 230.0);
  // Tenant 2 books the lane until t=300us...
  EXPECT_EQ(qos.Admit(kSsd, 0, 2, 300 * kUs, 0), 0);
  // ...so tenant 0 arriving behind that backlog is contended (10% share,
  // empty bucket, large request => delayed)...
  EXPECT_GT(qos.Admit(kSsd, 0, 0, 2 * kMs, 200 * kUs), 200 * kUs);
  // ...but once tenant 2 has been idle past the window, tenant 0 is a
  // lone tenant again and admits instantly.
  const int64_t later = 100 * kMs;
  EXPECT_EQ(qos.Admit(kSsd, 0, 0, 2 * kMs, later), later);
}

// Interleaved closed-loop driver over one lane: each tenant issues its
// next request at the granted start (backlogged pipelining); an
// instantly-admitted request paces at completion so the loop always
// advances.  Returns per-tenant admitted counts at `horizon`.
template <size_t N>
void PumpInterleaved(QosScheduler& qos, const TenantId (&ids)[N],
                     int64_t service, int64_t horizon, int (&counts)[N]) {
  int64_t now[N] = {};
  bool live[N];
  for (size_t i = 0; i < N; ++i) {
    counts[i] = 0;
    live[i] = true;
  }
  size_t remaining = N;
  while (remaining > 0) {
    // Advance whichever loop is earliest in virtual time.
    size_t which = N;
    for (size_t i = 0; i < N; ++i) {
      if (live[i] && (which == N || now[i] < now[which])) which = i;
    }
    const int64_t start = qos.Admit(kSsd, 0, ids[which], service, now[which]);
    if (start + service > horizon) {
      live[which] = false;
      --remaining;
      continue;
    }
    ++counts[which];
    now[which] = start == now[which] ? start + service : start;
  }
}

TEST(QosSchedulerTest, WeightRatiosHonoredOnSaturatedLane) {
  // Same priority, no guaranteed shares: all bandwidth is the weighted
  // pool, split 3:1.
  QosScheduler qos(QosConfig({{0, 3.0, 0.0, 1}, {2, 1.0, 0.0, 1}}), 230.0);
  const int64_t service = 100 * kUs;
  const int64_t horizon = 500 * kMs;
  const TenantId ids[2] = {0, 2};
  int counts[2];
  PumpInterleaved(qos, ids, service, horizon, counts);
  ASSERT_GT(counts[1], 0);
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_GT(ratio, 2.3) << counts[0] << " vs " << counts[1];
  EXPECT_LT(ratio, 3.7) << counts[0] << " vs " << counts[1];
}

TEST(QosSchedulerTest, StarvationFreedom) {
  // Tenant 2 has no share and loses every priority tie; the effective-
  // rate floor still guarantees it 2% of the lane.
  QosScheduler qos(QosConfig({{0, 1.0, 0.9, 2}, {2, 1.0, 0.0, 0}}), 230.0);
  const int64_t service = 100 * kUs;
  // Keep the aggressor visibly active across the whole run.
  for (int64_t t = 0; t < 1000 * kMs; t += kMs) {
    qos.Admit(kSsd, 0, 0, 900 * kUs, t);
  }
  int64_t now = 0;
  for (int i = 0; i < 10; ++i) {
    const int64_t start = qos.Admit(kSsd, 0, 2, service, now);
    // Delay per request is bounded by service / floor-rate (2%).
    EXPECT_LE(start - now, service * 50 + kUs) << "request " << i;
    now = start + service;
  }
  const QosStats stats = qos.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 2u);
  EXPECT_EQ(stats.tenants[1].id, 2u);
  EXPECT_GT(stats.tenants[1].delayed, 0u);
}

TEST(QosSchedulerTest, GuaranteedShareBoundsBacklogDelay) {
  // A backlogged tenant with share s admits, in steady state, one
  // `service` request every ~service/s — here 2x service at s=0.5.
  QosScheduler qos(QosConfig({{0, 1.0, 0.5, 1}, {2, 1.0, 0.5, 1}}), 230.0);
  const int64_t service = 100 * kUs;
  const int64_t horizon = 100 * kMs;
  const TenantId ids[2] = {0, 2};
  int counts[2];
  PumpInterleaved(qos, ids, service, horizon, counts);
  // Each should get ~50% of the lane: horizon/service/2 = 500 requests.
  for (int i = 0; i < 2; ++i) {
    EXPECT_GT(counts[i], 400) << "tenant " << ids[i];
    EXPECT_LT(counts[i], 600) << "tenant " << ids[i];
  }
}

TEST(QosSchedulerTest, HistogramPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.5), 0);
  for (int i = 1; i <= 1000; ++i) h.Record(i * kUs);
  EXPECT_EQ(h.count(), 1000u);
  // Log-bucketed with 8 sub-buckets per octave: ~12.5% resolution, and
  // Percentile returns the bucket's upper edge (never an underestimate
  // beyond one bucket).
  const int64_t p50 = h.Percentile(0.50);
  const int64_t p99 = h.Percentile(0.99);
  EXPECT_GE(p50, 500 * kUs);
  EXPECT_LE(p50, 570 * kUs);
  EXPECT_GE(p99, 990 * kUs);
  EXPECT_LE(p99, 1130 * kUs);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(QosSchedulerTest, AdmitChunkAccountsBytes) {
  QosScheduler qos(QosConfig({{0, 1.0, 0.5, 1}}), 230.0);
  const int64_t start = qos.AdmitChunk(0, 3, 0, 100 * kUs, 64_KiB, 0);
  EXPECT_EQ(start, 0);  // lone tenant on both lanes
  const QosStats stats = qos.Snapshot();
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].bytes, 64_KiB);
  EXPECT_EQ(stats.tenants[0].admitted, 2u);  // SSD lane + NIC lane
}

TEST(QosSchedulerConcurrencyTest, ParallelAdmissionsAreSane) {
  QosScheduler qos(QosConfig({{0, 2.0, 0.3, 1},
                              {2, 1.0, 0.3, 1},
                              {3, 1.0, 0.2, 0}}),
                   230.0);
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&qos, &ok, t] {
      const TenantId tenant = static_cast<TenantId>(t % 3 == 1 ? 2 : t % 3);
      Xoshiro256 rng(1234 + static_cast<uint64_t>(t));
      int64_t now = 0;
      for (int i = 0; i < kIters; ++i) {
        const auto service = static_cast<int64_t>(rng.Next() % 100 + 1) * kUs;
        const int lane = static_cast<int>(rng.Next() % 2);
        const int64_t start = qos.Admit(kSsd, lane, tenant, service, now);
        if (start < now) ok.store(false);
        qos.RecordRead(tenant, start + service - now);
        now = start + static_cast<int64_t>(rng.Next() % 50) * kUs;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  const QosStats stats = qos.Snapshot();
  uint64_t total = 0;
  for (const auto& t : stats.tenants) total += t.admitted;
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * kIters);
  for (const auto& t : stats.tenants) {
    if (t.reads > 0) EXPECT_GT(t.read_p99_ns, 0);
  }
}

// ---- end-to-end identity pin -------------------------------------------

constexpr uint64_t kChunk = 64_KiB;

struct RunResult {
  int64_t final_ns = 0;
  uint64_t ssd_written = 0;
  uint64_t ssd_read = 0;
};

// A fixed read/write workload against a 4-benefactor store; returns the
// exact final virtual time and aggregate device traffic.
RunResult RunFixedWorkload(std::function<void(StoreConfig&)> tweak) {
  net::ClusterConfig cc;
  cc.num_nodes = 5;
  net::Cluster cluster(cc);
  store::AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunk;
  sc.store.replication = 2;
  if (tweak) tweak(sc.store);
  for (int b = 0; b < 4; ++b) sc.benefactor_nodes.push_back(b + 1);
  sc.contribution_bytes = 64_MiB;
  sc.manager_node = 1;
  store::AggregateStore store(cluster, sc);
  sim::CurrentClock().Reset();

  store::StoreClient& client = store.ClientForNode(0);
  sim::VirtualClock clock(0);
  auto id = client.Create(clock, "identity");
  EXPECT_TRUE(id.ok());
  constexpr uint32_t kChunks = 32;
  EXPECT_TRUE(client.Fallocate(clock, *id, kChunks * kChunk).ok());
  Bitmap all(kChunk / sc.store.page_bytes);
  all.SetAll();
  std::vector<uint8_t> buf(kChunk);
  Xoshiro256 rng(42);
  for (uint32_t i = 0; i < kChunks; ++i) {
    for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
    EXPECT_TRUE(client.WriteChunkPages(clock, *id, i, all, buf).ok());
  }
  for (int round = 0; round < 3; ++round) {
    for (uint32_t i = 0; i < kChunks; i += 3) {
      EXPECT_TRUE(client.ReadChunk(clock, *id, i, buf).ok());
    }
    Bitmap some(kChunk / sc.store.page_bytes);
    for (size_t p = 0; p < some.size(); p += 2) some.Set(p);
    for (uint32_t i = 0; i < kChunks; i += 5) {
      EXPECT_TRUE(client.WriteChunkPages(clock, *id, i, some, buf).ok());
    }
  }

  RunResult r;
  r.final_ns = clock.now();
  for (size_t b = 0; b < store.num_benefactors(); ++b) {
    r.ssd_written += store.benefactor(b).ssd().host_bytes_written();
    r.ssd_read += store.benefactor(b).ssd().host_bytes_read();
  }
  return r;
}

TEST(QosIdentityTest, OffIsByteAndTimeIdentical) {
  // Baseline: a store with no QoS configuration at all.
  const RunResult base = RunFixedWorkload({});
  // qos=false with tenants configured: scheduler exists, must change
  // nothing.
  const RunResult off = RunFixedWorkload([](StoreConfig& cfg) {
    cfg.qos = false;
    cfg.qos_tenants = {{0, 2.0, 0.5, 2}, {1, 1.0, 0.1, 0}};
  });
  EXPECT_EQ(base.final_ns, off.final_ns);
  EXPECT_EQ(base.ssd_written, off.ssd_written);
  EXPECT_EQ(base.ssd_read, off.ssd_read);
}

TEST(QosIdentityTest, SingleTenantOnMatchesOff) {
  // Work conservation end to end: one tenant, qos=on — every admission
  // is uncontended, so the schedule is identical to qos=off.
  const RunResult base = RunFixedWorkload({});
  const RunResult on = RunFixedWorkload([](StoreConfig& cfg) {
    cfg.qos = true;
    cfg.qos_tenants = {{0, 1.0, 0.5, 1}};
  });
  EXPECT_EQ(base.final_ns, on.final_ns);
  EXPECT_EQ(base.ssd_written, on.ssd_written);
  EXPECT_EQ(base.ssd_read, on.ssd_read);
}

}  // namespace
}  // namespace nvm

// Conformance tests for the benefactor-side multi-chunk read RPC
// (Benefactor::ReadChunkRun + the batched StoreClient::ReadChunks path):
// request-count amortisation (a K-chunk run on one benefactor is exactly
// ONE request), byte-for-byte equality of batched vs chunk-at-a-time
// reads, virtual-time identity of a batch of one with the legacy per-chunk
// path (so traffic tables do not depend on the knob), device-latency
// amortisation, and a multi-process read storm over the streamed path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

namespace nvm::store {
namespace {

constexpr uint64_t kChunk = 64_KiB;

std::vector<uint8_t> Pattern(uint64_t bytes, uint64_t seed) {
  std::vector<uint8_t> v(bytes);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<AggregateStore> store;

  explicit Rig(int benefactors, bool batch_rpc, int client_nodes = 1,
               double nic_bw_mbps = 0.0) {
    net::ClusterConfig cc;
    cc.num_nodes = static_cast<size_t>(benefactors + client_nodes);
    if (nic_bw_mbps > 0.0) cc.network.nic_bw_mbps = nic_bw_mbps;
    cluster = std::make_unique<net::Cluster>(cc);
    AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.batch_rpc = batch_rpc;
    for (int b = 0; b < benefactors; ++b) {
      sc.benefactor_nodes.push_back(client_nodes + b);
    }
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = client_nodes;
    store = std::make_unique<AggregateStore>(*cluster, sc);
  }

  StoreClient& client(int node = 0) { return store->ClientForNode(node); }

  // Create a file of `chunks` chunks and flush `data` into it through the
  // node-0 client (full-chunk dirty writes).
  FileId WriteFile(const std::string& name, uint32_t chunks,
                   const std::vector<uint8_t>& data) {
    sim::VirtualClock clock(0);
    StoreClient& c = client();
    auto id = c.Create(clock, name);
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
    Bitmap all(kChunk / c.config().page_bytes);
    all.SetAll();
    for (uint32_t i = 0; i < chunks; ++i) {
      EXPECT_TRUE(c.WriteChunkPages(clock, *id, i, all,
                                    {data.data() + i * kChunk, kChunk})
                      .ok());
    }
    return *id;
  }
};

// Issue one batched read of chunks [0, n) and return the fetches.
std::vector<StoreClient::ChunkFetch> BatchRead(
    StoreClient& c, sim::VirtualClock& clock, FileId id, uint32_t n,
    std::vector<std::vector<uint8_t>>& bufs) {
  bufs.assign(n, std::vector<uint8_t>(kChunk));
  std::vector<StoreClient::ChunkFetch> fetches(n);
  for (uint32_t i = 0; i < n; ++i) {
    fetches[i].index = i;
    fetches[i].out = bufs[i];
  }
  EXPECT_TRUE(c.ReadChunks(clock, id, fetches).ok());
  return fetches;
}

TEST(BatchRpcTest, KChunkRunIsOneBenefactorRequest) {
  constexpr uint32_t kChunks = 8;
  Rig rig(/*benefactors=*/1, /*batch_rpc=*/true);
  const auto data = Pattern(kChunks * kChunk, 7);
  const FileId id = rig.WriteFile("/one", kChunks, data);

  Benefactor& b = rig.store->benefactor(0);
  const uint64_t requests_before = b.read_requests();
  const uint64_t runs_before = rig.client().run_rpcs();

  sim::VirtualClock clock(0);
  std::vector<std::vector<uint8_t>> bufs;
  auto fetches = BatchRead(rig.client(), clock, id, kChunks, bufs);
  for (const auto& f : fetches) ASSERT_TRUE(f.status.ok());

  // The whole K-chunk batch lives on one benefactor: exactly ONE request
  // (one header + one queueing slot), not one per chunk.
  EXPECT_EQ(b.read_requests() - requests_before, 1u);
  EXPECT_EQ(rig.client().run_rpcs() - runs_before, 1u);
  for (uint32_t i = 0; i < kChunks; ++i) {
    EXPECT_EQ(0, std::memcmp(bufs[i].data(), data.data() + i * kChunk,
                             kChunk))
        << "chunk " << i;
  }
}

TEST(BatchRpcTest, OneRunPerBenefactorAcrossStripes) {
  constexpr int kBenefactors = 4;
  constexpr uint32_t kChunks = 12;  // 3 chunks per benefactor, round-robin
  Rig rig(kBenefactors, /*batch_rpc=*/true);
  const auto data = Pattern(kChunks * kChunk, 13);
  const FileId id = rig.WriteFile("/spread", kChunks, data);

  std::vector<uint64_t> before(kBenefactors);
  for (int b = 0; b < kBenefactors; ++b) {
    before[static_cast<size_t>(b)] =
        rig.store->benefactor(static_cast<size_t>(b)).read_requests();
  }

  sim::VirtualClock clock(0);
  std::vector<std::vector<uint8_t>> bufs;
  auto fetches = BatchRead(rig.client(), clock, id, kChunks, bufs);
  for (const auto& f : fetches) ASSERT_TRUE(f.status.ok());

  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(static_cast<size_t>(b)).read_requests() -
                  before[static_cast<size_t>(b)],
              1u)
        << "benefactor " << b;
  }
  EXPECT_EQ(rig.client().run_rpcs(), static_cast<uint64_t>(kBenefactors));
}

TEST(BatchRpcTest, BatchedEqualsChunkAtATimeByteForByte) {
  constexpr uint32_t kChunks = 10;
  Rig batched(/*benefactors=*/3, /*batch_rpc=*/true);
  Rig legacy(/*benefactors=*/3, /*batch_rpc=*/false);
  const auto data = Pattern(kChunks * kChunk, 29);
  const FileId idb = batched.WriteFile("/bytes", kChunks, data);
  const FileId idl = legacy.WriteFile("/bytes", kChunks, data);

  sim::VirtualClock cb(0);
  sim::VirtualClock cl(0);
  std::vector<std::vector<uint8_t>> bb;
  std::vector<std::vector<uint8_t>> bl;
  auto fb = BatchRead(batched.client(), cb, idb, kChunks, bb);
  auto fl = BatchRead(legacy.client(), cl, idl, kChunks, bl);
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(fb[i].status.ok());
    ASSERT_TRUE(fl[i].status.ok());
    EXPECT_EQ(bb[i], bl[i]) << "chunk " << i;
    EXPECT_EQ(0,
              std::memcmp(bb[i].data(), data.data() + i * kChunk, kChunk));
  }
  // Identical data-plane traffic: the run RPC changes timing, not volume.
  EXPECT_EQ(batched.client().bytes_fetched(), legacy.client().bytes_fetched());
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(batched.store->benefactor(b).data_bytes_out(),
              legacy.store->benefactor(b).data_bytes_out());
  }
}

TEST(BatchRpcTest, BatchOfOneMatchesLegacyVirtualTime) {
  // Arithmetic identity: with one chunk per run, the streamed path must
  // charge exactly what the per-chunk path charges — same completion
  // times, same network bytes, same device busy time.
  for (const bool sparse : {false, true}) {
    Rig batched(/*benefactors=*/2, /*batch_rpc=*/true);
    Rig legacy(/*benefactors=*/2, /*batch_rpc=*/false);
    const auto data = Pattern(kChunk, 31);
    FileId idb;
    FileId idl;
    if (sparse) {
      // Fallocate but never write: the chunk is a hole on the benefactor.
      // Each rig gets its own setup clock so their resource timelines are
      // identical before the measured read.
      sim::VirtualClock sb(0);
      sim::VirtualClock sl(0);
      auto cb = batched.client().Create(sb, "/one");
      auto cl = legacy.client().Create(sl, "/one");
      ASSERT_TRUE(cb.ok() && cl.ok());
      ASSERT_TRUE(batched.client().Fallocate(sb, *cb, kChunk).ok());
      ASSERT_TRUE(legacy.client().Fallocate(sl, *cl, kChunk).ok());
      idb = *cb;
      idl = *cl;
    } else {
      idb = batched.WriteFile("/one", 1, data);
      idl = legacy.WriteFile("/one", 1, data);
    }

    sim::VirtualClock tb(0);
    sim::VirtualClock tl(0);
    std::vector<std::vector<uint8_t>> bb;
    std::vector<std::vector<uint8_t>> bl;
    auto fb = BatchRead(batched.client(), tb, idb, 1, bb);
    auto fl = BatchRead(legacy.client(), tl, idl, 1, bl);
    ASSERT_TRUE(fb[0].status.ok());
    ASSERT_TRUE(fl[0].status.ok());
    EXPECT_EQ(bb[0], bl[0]) << "sparse=" << sparse;

    EXPECT_EQ(fb[0].ready_at, fl[0].ready_at) << "sparse=" << sparse;
    EXPECT_EQ(tb.now(), tl.now()) << "sparse=" << sparse;
    EXPECT_EQ(batched.cluster->network().remote_bytes(),
              legacy.cluster->network().remote_bytes());
    EXPECT_EQ(batched.cluster->network().bytes_transferred(),
              legacy.cluster->network().bytes_transferred());
    EXPECT_EQ(batched.store->benefactor(0).ssd().channel().busy_ns(),
              legacy.store->benefactor(0).ssd().channel().busy_ns());
    EXPECT_EQ(batched.store->benefactor(0).read_requests(),
              legacy.store->benefactor(0).read_requests());
  }
}

TEST(BatchRpcTest, RunAmortisesDeviceRequestLatency) {
  // A fast NIC makes the SSD the bottleneck, so the per-request latency
  // saved by the single queueing slot shows up in the end-to-end makespan
  // (on the default NIC-bound profile it only shows in device busy time).
  constexpr uint32_t kChunks = 8;
  constexpr double kFastNic = 100'000.0;
  Rig batched(/*benefactors=*/1, /*batch_rpc=*/true, /*client_nodes=*/1,
              kFastNic);
  Rig legacy(/*benefactors=*/1, /*batch_rpc=*/false, /*client_nodes=*/1,
             kFastNic);
  const auto data = Pattern(kChunks * kChunk, 37);
  const FileId idb = batched.WriteFile("/amortise", kChunks, data);
  const FileId idl = legacy.WriteFile("/amortise", kChunks, data);

  const int64_t busy_b0 =
      batched.store->benefactor(0).ssd().channel().busy_ns();
  const int64_t busy_l0 = legacy.store->benefactor(0).ssd().channel().busy_ns();

  sim::VirtualClock tb(0);
  sim::VirtualClock tl(0);
  std::vector<std::vector<uint8_t>> bb;
  std::vector<std::vector<uint8_t>> bl;
  auto fb = BatchRead(batched.client(), tb, idb, kChunks, bb);
  auto fl = BatchRead(legacy.client(), tl, idl, kChunks, bl);
  int64_t done_b = 0;
  int64_t done_l = 0;
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(fb[i].status.ok());
    ASSERT_TRUE(fl[i].status.ok());
    done_b = std::max(done_b, fb[i].ready_at);
    done_l = std::max(done_l, fl[i].ready_at);
  }

  // One queueing slot per run: K chunks save exactly (K-1) per-request
  // read latencies of device busy time...
  const int64_t latency =
      batched.store->benefactor(0).ssd().profile().read_latency_ns;
  const int64_t busy_b =
      batched.store->benefactor(0).ssd().channel().busy_ns() - busy_b0;
  const int64_t busy_l =
      legacy.store->benefactor(0).ssd().channel().busy_ns() - busy_l0;
  EXPECT_EQ(busy_l - busy_b, (kChunks - 1) * latency);
  // ...and the single-benefactor batch (SSD-bound under the fast NIC)
  // finishes at least that much earlier end to end.
  EXPECT_GE(done_l - done_b, (kChunks - 1) * latency);
}

TEST(BatchRpcTest, ConcurrentBatchedReadersSeeSameBytes) {
  // A read storm over the streamed path: several client nodes batch-read
  // the same striped file concurrently.  Exercises StreamTransfer and the
  // run grouping under real threads (TSan coverage via the concurrency
  // label); every reader must see the exact file bytes.
  constexpr int kReaders = 3;
  constexpr uint32_t kChunks = 12;
  Rig rig(/*benefactors=*/4, /*batch_rpc=*/true, /*client_nodes=*/kReaders);
  const auto data = Pattern(kChunks * kChunk, 41);
  const FileId id = rig.WriteFile("/storm", kChunks, data);

  std::atomic<int> failures{0};
  auto placement = rig.cluster->BlockPlacement(1, kReaders);
  rig.cluster->RunProcesses(placement, [&](net::ProcessEnv& env) {
    StoreClient& c = rig.store->ClientForNode(env.node_id);
    std::vector<std::vector<uint8_t>> bufs(kChunks,
                                           std::vector<uint8_t>(kChunk));
    std::vector<StoreClient::ChunkFetch> fetches(kChunks);
    for (uint32_t i = 0; i < kChunks; ++i) {
      fetches[i].index = i;
      fetches[i].out = bufs[i];
    }
    if (!c.ReadChunks(*env.clock, id, fetches).ok()) {
      failures.fetch_add(1);
      return;
    }
    for (uint32_t i = 0; i < kChunks; ++i) {
      if (!fetches[i].status.ok() ||
          std::memcmp(bufs[i].data(), data.data() + i * kChunk, kChunk) !=
              0) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace nvm::store

// Edge-case and boundary tests across modules: exact-boundary pins,
// zero-length operations, header-capacity limits, self-sends, PFS file
// store semantics, device-profile arithmetic, and concurrent
// open-or-create races.
#include <gtest/gtest.h>

#include <thread>

#include "common/rng.hpp"
#include "minimpi/comm.hpp"
#include "nvmalloc/runtime.hpp"
#include "sim/device.hpp"
#include "workloads/testbed.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr uint64_t kPage = NvmRegion::kPageBytes;

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;
  std::unique_ptr<NvmallocRuntime> runtime;

  Rig() {
    net::ClusterConfig cc;
    cc.num_nodes = 4;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.benefactor_nodes = {1, 2, 3};
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    runtime = std::make_unique<NvmallocRuntime>(*store, 0);
    sim::CurrentClock().Reset();
  }
};

// ---- region boundaries ----

TEST(EdgeTest, PinAtExactRegionEnd) {
  Rig rig;
  auto r = rig.runtime->SsdMalloc(kPage * 3 + 100);  // unaligned size
  ASSERT_TRUE(r.ok());
  // The very last byte is accessible; one past is not.
  auto last = (*r)->Pin(kPage * 3 + 99, 1, true);
  ASSERT_TRUE(last.ok());
  last->data()[0] = 0x7E;
  EXPECT_EQ((*r)->Pin(kPage * 3 + 100, 1, false).status().code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ((*r)->Pin(0, kPage * 3 + 101, false).status().code(),
            ErrorCode::kOutOfRange);
  // Zero-length pin at the end boundary is fine.
  EXPECT_TRUE((*r)->Pin(kPage * 3 + 100, 0, false).ok());
  // The tail partial page round-trips through the store.
  ASSERT_TRUE((*r)->Sync().ok());
  uint8_t got = 0;
  ASSERT_TRUE((*r)->Read(kPage * 3 + 99, {&got, 1}).ok());
  EXPECT_EQ(got, 0x7E);
}

TEST(EdgeTest, EmptyReadsAndWritesAreNoops) {
  Rig rig;
  auto r = rig.runtime->SsdMalloc(kPage);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> empty;
  EXPECT_TRUE((*r)->Read(0, empty).ok());
  EXPECT_TRUE((*r)->Write(kPage, empty).ok());  // at end, zero length
  EXPECT_TRUE((*r)->Sync().ok());
}

TEST(EdgeTest, SyncWithNothingDirtyIsCheap) {
  Rig rig;
  auto r = rig.runtime->SsdMalloc(4 * kPage);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> buf(kPage);
  ASSERT_TRUE((*r)->Read(0, buf).ok());
  const int64_t t0 = sim::CurrentClock().now();
  ASSERT_TRUE((*r)->Sync().ok());
  // No dirty pages: no store writes, negligible time.
  EXPECT_EQ(rig.cluster->TotalSsdBytesWritten(), 0u);
  EXPECT_LT(sim::CurrentClock().now() - t0, 1'000'000);
}

TEST(EdgeTest, RegionStatsAccumulate) {
  Rig rig;
  auto r = rig.runtime->SsdMalloc(8 * kPage);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> buf(3 * kPage);
  ASSERT_TRUE((*r)->Read(kPage, buf).ok());
  auto s = (*r)->stats();
  EXPECT_EQ(s.page_faults, 3u);
  EXPECT_EQ(s.bytes_faulted_in, 3 * kPage);
  ASSERT_TRUE((*r)->Write(0, {buf.data(), 1}).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  s = (*r)->stats();
  EXPECT_EQ(s.page_faults, 4u);
  EXPECT_EQ(s.bytes_written_back, kPage);
}

TEST(EdgeTest, DropCountsDirtyChunksDiscardedAfterFailedWriteback) {
  // Drop() write-back is best-effort: when every replica is dead the dirty
  // chunks are discarded (Sync is the durability barrier), and the
  // discards are visible in the cache traffic counters.
  Rig rig;
  auto& mount = rig.runtime->mount();
  auto f = mount.Create("/doomed", 2 * kChunk);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> data(2 * kChunk, 0xAB);
  ASSERT_TRUE(f->Write(0, data).ok());
  EXPECT_EQ(mount.cache().traffic().dropped_dirty.load(), 0u);
  for (size_t b = 0; b < 3; ++b) rig.store->benefactor(b).Kill();
  ASSERT_TRUE(mount.cache().Drop(sim::CurrentClock(), f->id()).ok());
  EXPECT_EQ(mount.cache().traffic().dropped_dirty.load(), 2u);
  EXPECT_EQ(mount.cache().resident_chunks(), 0u);
}

// ---- checkpoint header limits ----

TEST(EdgeTest, CheckpointRejectsTooManySegments) {
  Rig rig;
  std::vector<uint8_t> tiny(8, 1);
  CheckpointSpec spec;
  // Header chunk holds (chunk - header) / 8 sizes; exceed it.
  const size_t too_many = kChunk / 8;
  for (size_t i = 0; i < too_many; ++i) {
    spec.dram.push_back({tiny.data(), tiny.size()});
  }
  EXPECT_DEATH(
      { (void)rig.runtime->SsdCheckpoint(spec, "/ckpt/toomany"); },
      "too many checkpoint segments");
}

TEST(EdgeTest, EmptyCheckpointRoundTrips) {
  Rig rig;
  CheckpointSpec spec;  // nothing to save
  auto info = rig.runtime->SsdCheckpoint(spec, "/ckpt/empty");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->dram_bytes_copied, 0u);
  RestoreSpec restore;
  EXPECT_TRUE(rig.runtime->SsdRestart("/ckpt/empty", restore).ok());
}

TEST(EdgeTest, DuplicateCheckpointNameRejected) {
  Rig rig;
  CheckpointSpec spec;
  ASSERT_TRUE(rig.runtime->SsdCheckpoint(spec, "/ckpt/dup").ok());
  EXPECT_EQ(rig.runtime->SsdCheckpoint(spec, "/ckpt/dup").status().code(),
            ErrorCode::kAlreadyExists);
}

// ---- mount semantics ----

TEST(EdgeTest, ConcurrentOpenOrCreateConverges) {
  Rig rig;
  fuselite::MountPoint& mount = rig.runtime->mount();
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<store::FileId> ids(kThreads, store::kInvalidFileId);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto f = mount.OpenOrCreate("/raced");
      if (f.ok()) ids[static_cast<size_t>(t)] = f->id();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(ids[static_cast<size_t>(t)], ids[0]);
    EXPECT_NE(ids[static_cast<size_t>(t)], store::kInvalidFileId);
  }
}

TEST(EdgeTest, StatReflectsImplicitGrowth) {
  Rig rig;
  auto f = rig.runtime->mount().Create("/grow");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->Stat()->size, 0u);
  std::vector<uint8_t> page(kPage, 3);
  ASSERT_TRUE(f->Write(10 * kChunk + 5, page).ok());
  EXPECT_GE(f->Stat()->size, 10 * kChunk + 5 + kPage);
}

// ---- minimpi corners ----

TEST(EdgeTest, SendToSelfWorks) {
  net::ClusterConfig cc;
  cc.num_nodes = 1;
  net::Cluster cluster(cc);
  minimpi::Comm comm(cluster, {0});
  cluster.RunProcesses({0}, [&](net::ProcessEnv& env) {
    auto mpi = comm.rank_handle(env.rank);
    mpi.SendVal<int>(0, 1234);
    EXPECT_EQ(mpi.RecvVal<int>(0), 1234);
  });
}

TEST(EdgeTest, ZeroByteMessage) {
  net::ClusterConfig cc;
  cc.num_nodes = 2;
  net::Cluster cluster(cc);
  minimpi::Comm comm(cluster, {0, 1});
  cluster.RunProcesses({0, 1}, [&](net::ProcessEnv& env) {
    auto mpi = comm.rank_handle(env.rank);
    if (env.rank == 0) {
      mpi.Send(1, {});
    } else {
      std::vector<uint8_t> none;
      mpi.Recv(0, none);
    }
  });
}

TEST(EdgeTest, SingleRankCollectivesAreIdentity) {
  net::ClusterConfig cc;
  cc.num_nodes = 1;
  net::Cluster cluster(cc);
  minimpi::Comm comm(cluster, {0});
  cluster.RunProcesses({0}, [&](net::ProcessEnv& env) {
    auto mpi = comm.rank_handle(env.rank);
    std::vector<uint8_t> data(64, 9);
    mpi.Bcast(data, 0);
    EXPECT_EQ(data[0], 9);
    EXPECT_EQ(mpi.AllreduceSum<int64_t>(41), 41);
    std::vector<uint8_t> out(64);
    mpi.Allgather(data, out);
    EXPECT_EQ(out, data);
    mpi.Barrier();
  });
}

// ---- PFS file store ----

TEST(EdgeTest, PfsFilesRoundTripAndCharge) {
  workloads::TestbedOptions to;
  to.compute_nodes = 2;
  to.benefactors = 2;
  workloads::Testbed tb(to);
  auto& clock = sim::CurrentClock();
  std::vector<uint8_t> data(100'000);
  Xoshiro256 rng(1);
  for (auto& b : data) b = static_cast<uint8_t>(rng.Next());

  const int64_t t0 = clock.now();
  ASSERT_TRUE(tb.PfsWriteFile(clock, "f", 5000, data).ok());
  EXPECT_GT(clock.now(), t0);  // PFS time charged

  std::vector<uint8_t> got(data.size());
  ASSERT_TRUE(tb.PfsReadFile(clock, "f", 5000, got).ok());
  EXPECT_EQ(got, data);
  // The hole before offset 5000 reads as zeros.
  std::vector<uint8_t> hole(5000, 0xFF);
  ASSERT_TRUE(tb.PfsReadFile(clock, "f", 0, hole).ok());
  for (uint8_t b : hole) ASSERT_EQ(b, 0);

  EXPECT_EQ(tb.PfsReadFile(clock, "missing", 0, got).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(tb.PfsReadFile(clock, "f", 100'000, got).code(),
            ErrorCode::kOutOfRange);
}

// ---- device model arithmetic ----

TEST(EdgeTest, AlignedWritesHaveNoAmplification) {
  sim::SsdDevice ssd("ssd", sim::IntelX25E());
  sim::VirtualClock c;
  ssd.ChargeWrite(c, 0, 16 * sim::SsdDevice::kPageBytes);
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
}

TEST(EdgeTest, FusionIoIsProportionallyFaster) {
  sim::SsdDevice sata("sata", sim::IntelX25E());
  sim::SsdDevice pcie("pcie", sim::FusionIoDriveDuo());
  sim::VirtualClock a;
  sim::VirtualClock b;
  sata.ChargeRead(a, 0, 10_MiB);
  pcie.ChargeRead(b, 0, 10_MiB);
  // 250 vs 1500 MB/s: about 6x once latency is amortised.
  EXPECT_NEAR(static_cast<double>(a.now()) / static_cast<double>(b.now()),
              6.0, 0.5);
}

TEST(EdgeTest, WearLevelingSpreadsHotspots) {
  // Hammer one block after touching 16: a levelled FTL spreads the
  // erases; a naive one concentrates them.
  auto hammer = [](bool leveling) {
    sim::SsdDevice ssd("ssd", sim::IntelX25E(), leveling);
    sim::VirtualClock c;
    // Touch 16 blocks once each.
    for (uint64_t b = 0; b < 16; ++b) {
      ssd.ChargeWrite(c, b * sim::SsdDevice::kEraseBlockBytes,
                      sim::SsdDevice::kEraseBlockBytes);
    }
    // Then rewrite block 0 another 64 times.
    for (int i = 0; i < 64; ++i) {
      ssd.ChargeWrite(c, 0, sim::SsdDevice::kEraseBlockBytes);
    }
    return ssd.max_block_erases();
  };
  const uint64_t leveled = hammer(true);
  const uint64_t naive = hammer(false);
  EXPECT_EQ(naive, 65u);            // the hot block ate everything
  EXPECT_EQ(leveled, (16u + 64u + 15u) / 16u);  // 80 erases over 16 blocks
  EXPECT_LT(leveled, naive / 10);
}

TEST(EdgeTest, ZeroByteDeviceWriteIsFree) {
  sim::SsdDevice ssd("ssd", sim::IntelX25E());
  sim::VirtualClock c;
  ssd.ChargeWrite(c, 123, 0);
  EXPECT_EQ(c.now(), 0);
  EXPECT_EQ(ssd.device_bytes_programmed(), 0u);
}

}  // namespace
}  // namespace nvm

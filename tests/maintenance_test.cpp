// Tests for the background maintenance service: heartbeat failure
// detection with a suspicion threshold (no repair storms from flapping),
// report-driven incremental repair with capacity-aware placement and the
// repair_bw_fraction duty-cycle throttle, the metadata scrubber (orphan
// reclamation, reservation-drift fixes, under-replication re-queueing),
// lost-chunk surfacing, and convergence under concurrent writers.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/report.hpp"
#include "store/store.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;
constexpr int64_t kMs = 1'000'000;  // virtual ns per millisecond

// Fast maintenance cadence so tests cover many sweeps in little virtual
// time: 1 ms heartbeats, 3 misses to declare, 20 ms scrubs.
struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;

  explicit Rig(int replication,
               std::function<void(store::StoreConfig&)> tweak = {}) {
    net::ClusterConfig cc;
    cc.num_nodes = kBenefactors + 1;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = replication;
    sc.store.maintenance = true;
    sc.store.heartbeat_period_ms = 1;
    sc.store.heartbeat_misses = 3;
    sc.store.scrub_period_ms = 20;
    if (tweak) tweak(sc.store);
    for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }

  store::MaintenanceService& ms() { return *store->maintenance(); }
};

std::vector<uint8_t> Pattern(uint64_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

store::FileId WriteStoreFile(store::StoreClient& c, const std::string& name,
                             uint32_t chunks, const std::vector<uint8_t>& data,
                             sim::VirtualClock& clock) {
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < chunks; ++i) {
    EXPECT_TRUE(
        c.WriteChunkPages(clock, *id, i, all, {data.data() + i * kChunk, kChunk})
            .ok());
  }
  return *id;
}

// Every chunk of `id` carries exactly `replication` distinct replicas, all
// on alive benefactors.
void ExpectFullyReplicated(Rig& rig, store::FileId id, uint32_t chunks,
                           int replication) {
  sim::VirtualClock clock(0);
  auto locs = rig.store->manager().GetReadLocations(clock, id, 0, chunks);
  ASSERT_TRUE(locs.ok());
  for (uint32_t i = 0; i < chunks; ++i) {
    const store::ReadLocation& loc = (*locs)[i];
    std::set<int> distinct(loc.benefactors.begin(), loc.benefactors.end());
    EXPECT_EQ(distinct.size(), static_cast<size_t>(replication))
        << "chunk " << i;
    for (int b : loc.benefactors) {
      EXPECT_TRUE(rig.store->benefactor(static_cast<size_t>(b)).alive())
          << "chunk " << i << " on dead benefactor " << b;
    }
  }
}

// ---- failure detector ----

TEST(MaintenanceTest, SuspicionThresholdRidesOutFlapping) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  WriteStoreFile(c, "/flap", 8, Pattern(8 * kChunk, 1), clock);

  // Two missed heartbeats: suspected, never declared, nothing enqueued.
  // Deadlines are relative to the worker's clock — client writes tick the
  // service, so it may already have swept a few times.  Drain any still
  // in-flight tick work first so no queued catch-up sweeps land after the
  // kill and inflate the miss count.
  rig.ms().RunUntil(rig.ms().now_ns());
  const int64_t t0 = rig.ms().now_ns();
  rig.store->benefactor(1).Kill();
  rig.ms().RunUntil(t0 + 2 * kMs);
  auto s = rig.ms().stats();
  EXPECT_GE(s.heartbeat_sweeps, 2u);
  EXPECT_GE(s.benefactors_suspected, 1u);
  EXPECT_EQ(s.benefactors_declared_dead, 0u);
  EXPECT_EQ(s.repairs_enqueued, 0u);

  // The stall clears before the threshold: the miss counter resets, so
  // flapping cannot amplify into repair traffic.
  rig.store->benefactor(1).Revive();
  rig.ms().RunUntil(t0 + 4 * kMs);
  EXPECT_EQ(rig.ms().stats().benefactors_declared_dead, 0u);
  EXPECT_EQ(rig.ms().stats().repairs_enqueued, 0u);

  // A real death: three consecutive misses declare it and queue every
  // chunk that held a replica there; the queue then drains to full
  // replication on the survivors.
  rig.store->benefactor(1).Kill();
  rig.ms().RunUntil(t0 + 9 * kMs);
  s = rig.ms().stats();
  EXPECT_EQ(s.benefactors_declared_dead, 1u);
  EXPECT_GT(s.repairs_enqueued, 0u);
  EXPECT_GT(s.replicas_recreated, 0u);
  EXPECT_TRUE(rig.ms().QueueEmpty());

  auto fid = c.Open(clock, "/flap");
  ASSERT_TRUE(fid.ok());
  ExpectFullyReplicated(rig, *fid, 8, 2);
}

TEST(MaintenanceTest, RedeclareAfterReviveNeedsFullThresholdAgain) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  store::FileId id = WriteStoreFile(c, "/re", 4, Pattern(4 * kChunk, 2), clock);

  rig.ms().RunUntil(rig.ms().now_ns());  // drain in-flight tick work
  const int64_t t0 = rig.ms().now_ns();
  rig.store->benefactor(2).Kill();
  rig.ms().RunUntil(t0 + 5 * kMs);  // declared after 3 misses, repaired
  EXPECT_EQ(rig.ms().stats().benefactors_declared_dead, 1u);
  ExpectFullyReplicated(rig, id, 4, 2);

  // Revive, then kill again: a second declaration requires three fresh
  // consecutive misses (and finds nothing to repair — the survivor set
  // already carries full replication).
  rig.store->benefactor(2).Revive();
  rig.ms().RunUntil(t0 + 7 * kMs);
  rig.store->benefactor(2).Kill();
  rig.ms().RunUntil(t0 + 9 * kMs);
  EXPECT_EQ(rig.ms().stats().benefactors_declared_dead, 1u);
  rig.ms().RunUntil(t0 + 12 * kMs);
  EXPECT_EQ(rig.ms().stats().benefactors_declared_dead, 2u);
  ExpectFullyReplicated(rig, id, 4, 2);
}

// ---- report-driven incremental repair ----

TEST(MaintenanceTest, DegradedWriteReportsDriveSelfHeal) {
  // Detector and scrubber pushed out of the horizon: ONLY the degraded
  // write reports can drive the self-heal (and the background sweeps
  // cannot repair the chunks before the overwrites even reach them).
  Rig rig(/*replication=*/2, [](store::StoreConfig& cfg) {
    cfg.heartbeat_period_ms = 1'000'000;
    cfg.scrub_period_ms = 1'000'000;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 8;
  const auto before = Pattern(kChunks * kChunk, 3);
  const store::FileId id = WriteStoreFile(c, "/heal", kChunks, before, clock);

  // Kill a replica holder, then overwrite every chunk: each write that
  // misses the dead replica is a degraded success and reports the chunk.
  rig.store->benefactor(0).Kill();
  const auto after = Pattern(kChunks * kChunk, 4);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(
        c.WriteChunkPages(clock, id, i, all, {after.data() + i * kChunk, kChunk})
            .ok());
  }
  EXPECT_GT(c.degraded_writes(), 0u);
  auto s = rig.ms().stats();
  EXPECT_GT(s.degraded_reports, 0u);

  // No manual RepairReplication anywhere: draining the background queue
  // alone restores full replication.
  rig.ms().RunUntil(clock.now());
  s = rig.ms().stats();
  EXPECT_TRUE(rig.ms().QueueEmpty());
  EXPECT_GT(s.replicas_recreated, 0u);
  EXPECT_EQ(s.lost_chunks, 0u);
  ExpectFullyReplicated(rig, id, kChunks, 2);

  // Self-healed replication survives a SECOND failure: kill one of the
  // survivors and demand every byte of the latest data back.
  rig.store->benefactor(2).Kill();
  std::vector<uint8_t> buf(kChunk);
  sim::VirtualClock rclock(clock.now());
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(c.ReadChunk(rclock, id, i, buf).ok()) << "chunk " << i;
    EXPECT_EQ(0, std::memcmp(buf.data(), after.data() + i * kChunk, kChunk))
        << "chunk " << i;
  }
}

TEST(MaintenanceTest, RepairPlacementPrefersLeastLoadedBenefactor) {
  // Three alive candidates after the kill; the emptiest must receive the
  // re-replicated chunks (capacity-aware placement, not first-fit).  The
  // scrubber is pushed out of the test horizon so it cannot "fix" the
  // phantom reservations used to load one benefactor.
  Rig rig(/*replication=*/2, [](store::StoreConfig& cfg) {
    cfg.scrub_period_ms = 1'000'000;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/place", 8, Pattern(8 * kChunk, 5), clock);

  // Load benefactor 3 with extra reservations so it is clearly the
  // fullest; benefactors 1 and 2 stay lighter.
  ASSERT_TRUE(rig.store->benefactor(3).ReserveChunks(200).ok());
  const uint64_t free3 = rig.store->benefactor(3).bytes_free();

  rig.store->benefactor(0).Kill();
  rig.ms().RunUntil(rig.ms().now_ns() + 5 * kMs);  // declare + drain
  ASSERT_TRUE(rig.ms().QueueEmpty());
  ExpectFullyReplicated(rig, id, 8, 2);
  // The fullest benefactor gained nothing beyond what it already held.
  EXPECT_EQ(rig.store->benefactor(3).bytes_free(), free3);
  rig.store->benefactor(3).ReleaseChunkReservation(200);
}

TEST(MaintenanceTest, ThrottleDutyCycleBoundsRepairTime) {
  auto run = [](double fraction) {
    Rig rig(/*replication=*/2, [&](store::StoreConfig& cfg) {
      cfg.repair_bw_fraction = fraction;
    });
    store::StoreClient& c = rig.store->ClientForNode(0);
    sim::VirtualClock clock(0);
    WriteStoreFile(c, "/thr", 16, Pattern(16 * kChunk, 6), clock);
    rig.store->benefactor(1).Kill();
    rig.ms().RunUntil(rig.ms().now_ns() + 5 * kMs);
    EXPECT_TRUE(rig.ms().QueueEmpty());
    auto s = rig.ms().stats();
    EXPECT_GT(s.replicas_recreated, 0u);
    EXPECT_GT(s.repair_busy_ns, 0);
    return s;
  };

  const auto full = run(1.0);
  const auto throttled = run(0.1);
  // Unthrottled: no idle injected at all.
  EXPECT_EQ(full.throttle_idle_ns, 0);
  // At f=0.1 the worker idles (1-f)/f = 9x its busy time (integer
  // truncation per batch can shave a little).
  EXPECT_GE(throttled.throttle_idle_ns, 8 * throttled.repair_busy_ns);
  // Same failure, same data: the throttled run converges later in virtual
  // time — bandwidth ceded to foreground traffic is repair time paid.
  EXPECT_GT(throttled.converged_at_ns, full.converged_at_ns);
}

// ---- scrubber ----

TEST(MaintenanceTest, ScrubReclaimsOrphansAndFixesReservationDrift) {
  Rig rig(/*replication=*/1);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  WriteStoreFile(c, "/scrub", 4, Pattern(4 * kChunk, 7), clock);

  // Manufacture inconsistencies behind the manager's back: a stored chunk
  // no metadata references (as an abandoned repair copy would leave) and
  // phantom reservations (leaked accounting).
  store::Benefactor& b = rig.store->benefactor(0);
  const uint64_t used_before = b.bytes_used();
  store::ChunkKey bogus;
  bogus.origin_file = 9999;
  bogus.index = 0;
  bogus.version = 0;
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  std::vector<uint8_t> junk(kChunk, 0xab);
  sim::VirtualClock dc(0);
  ASSERT_TRUE(b.WritePages(dc, bogus, all, junk).ok());
  ASSERT_TRUE(b.ReserveChunks(3).ok());
  ASSERT_TRUE(b.HasChunk(bogus));

  // One scrub period later both are reconciled.
  rig.ms().RunUntil(rig.ms().now_ns() + 25 * kMs);
  auto s = rig.ms().stats();
  EXPECT_GE(s.scrub_passes, 1u);
  EXPECT_GE(s.scrub_orphans_deleted, 1u);
  EXPECT_GE(s.scrub_reservation_fixes, 3u);
  EXPECT_FALSE(b.HasChunk(bogus));
  EXPECT_EQ(b.bytes_used(), used_before);
}

TEST(MaintenanceTest, ScrubRequeuesFailuresTheReportPathMissed) {
  // Heartbeats effectively disabled: only the scrubber can notice that a
  // silently dead benefactor left chunks under-replicated (no write ever
  // touched them after the death, so no degraded report exists).
  Rig rig(/*replication=*/2, [](store::StoreConfig& cfg) {
    cfg.heartbeat_period_ms = 1'000'000;  // far beyond the test horizon
    cfg.scrub_period_ms = 5;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/silent", 8, Pattern(8 * kChunk, 8), clock);

  rig.store->benefactor(2).Kill();
  rig.ms().RunUntil(rig.ms().now_ns() + 12 * kMs);  // two scrub passes
  auto s = rig.ms().stats();
  EXPECT_EQ(s.heartbeat_sweeps, 0u);
  EXPECT_EQ(s.degraded_reports, 0u);
  EXPECT_GT(s.scrub_requeued, 0u);
  EXPECT_GT(s.replicas_recreated, 0u);
  EXPECT_TRUE(rig.ms().QueueEmpty());
  ExpectFullyReplicated(rig, id, 8, 2);
}

// ---- lost chunks ----

TEST(MaintenanceTest, LostChunksAreSurfacedNotSilentlyKept) {
  Rig rig(/*replication=*/1);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 8;
  const store::FileId id =
      WriteStoreFile(c, "/lost", kChunks, Pattern(kChunks * kChunk, 9), clock);

  rig.store->benefactor(1).Kill();
  // Declared dead after three misses; its chunks have no survivor.
  rig.ms().RunUntil(rig.ms().now_ns() + 5 * kMs);
  auto s = rig.ms().stats();
  EXPECT_EQ(s.lost_chunks, 2u);  // 8 chunks striped over 4 benefactors
  EXPECT_EQ(rig.store->manager().lost_chunks(), 2u);
  EXPECT_EQ(s.replicas_recreated, 0u);

  // A lost chunk's replica list records the truth — no survivors — so
  // reads fail fast with UNAVAILABLE instead of retrying dead benefactors.
  int lost_seen = 0;
  std::vector<uint8_t> buf(kChunk);
  sim::VirtualClock rclock(clock.now());
  for (uint32_t i = 0; i < kChunks; ++i) {
    auto loc = rig.store->manager().GetReadLocation(rclock, id, i);
    ASSERT_TRUE(loc.ok());
    if (loc->benefactors.empty()) {
      ++lost_seen;
      Status rs = c.ReadChunk(rclock, id, i, buf);
      EXPECT_FALSE(rs.ok());
      EXPECT_EQ(rs.code(), ErrorCode::kUnavailable);
    } else {
      EXPECT_TRUE(c.ReadChunk(rclock, id, i, buf).ok()) << "chunk " << i;
    }
  }
  EXPECT_EQ(lost_seen, 2);
  // The operator-facing report shouts about it.
  const std::string report = store::StatusReport(*rig.store);
  EXPECT_NE(report.find("LOST CHUNKS: 2"), std::string::npos) << report;
}

// ---- manual engine parity ----

TEST(MaintenanceTest, ManualRepairStillWorksAlongsideService) {
  // RepairReplication is a synchronous wrapper over the same engine; with
  // the service idle it must behave exactly as before.
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/manual", 8, Pattern(8 * kChunk, 10), clock);
  rig.store->benefactor(3).Kill();
  uint64_t lost = 0;
  auto recreated = rig.store->manager().RepairReplication(clock, &lost);
  ASSERT_TRUE(recreated.ok());
  EXPECT_GT(*recreated, 0u);
  EXPECT_EQ(lost, 0u);
  ExpectFullyReplicated(rig, id, 8, 2);
}

// ---- repair-engine races ----
//
// These drive the plan/execute/commit engine by hand to pin down
// interleavings the background loops can produce but thread timing alone
// cannot reproduce deterministically.  The rigs push both sweeps out of
// the horizon so nothing interferes with the staged sequence.

constexpr auto kQuiet = [](store::StoreConfig& cfg) {
  cfg.heartbeat_period_ms = 1'000'000;
  cfg.scrub_period_ms = 1'000'000;
};

TEST(MaintenanceTest, WriteLandingDuringRepairCopyCannotCommitStaleBytes) {
  Rig rig(/*replication=*/2, kQuiet);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 21);
  const store::FileId id = WriteStoreFile(c, "/race", 1, v1, clock);

  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  ASSERT_EQ(loc0->benefactors.size(), 2u);
  const store::ChunkKey key = loc0->key;
  const int survivor = loc0->benefactors[0];
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  // A write is prepared — and so in flight — before the repair plans.
  auto wloc = m.PrepareWrite(clock, id, 0);
  ASSERT_TRUE(wloc.ok());

  // Plan + copy: the copy reads the PRE-write bytes off the survivor.
  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  const int target = plans[0].targets[0];
  auto out = m.ExecuteRepairPlan(clock, plans[0]);
  ASSERT_EQ(out.written.size(), 1u);

  // The write's data now lands on the survivor and completes.
  const auto v2 = Pattern(kChunk, 22);
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  sim::VirtualClock wc(clock.now());
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(survivor))
                  .WritePages(wc, key, all, v2)
                  .ok());
  m.CompleteWrite(wloc->key);

  // The commit must refuse: its copy predates the landed write.  The
  // stale target is undone and the chunk handed back for retry.
  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 0u);
  EXPECT_TRUE(requeue);
  EXPECT_FALSE(
      rig.store->benefactor(static_cast<size_t>(target)).HasChunk(key));

  // The retry heals from the fresh bytes: every replica reads back v2.
  ASSERT_TRUE(m.RepairReplication(clock).ok());
  ExpectFullyReplicated(rig, id, 1, 2);
  auto healed = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(healed.ok());
  std::vector<uint8_t> got(kChunk);
  for (int b : healed->benefactors) {
    sim::VirtualClock rc(clock.now());
    ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(b))
                    .ReadChunk(rc, key, got)
                    .ok());
    EXPECT_EQ(got, v2) << "replica on benefactor " << b;
  }
}

TEST(MaintenanceTest, OpenWriteFencesRepairCommit) {
  Rig rig(/*replication=*/2, kQuiet);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/fence", 1, Pattern(kChunk, 23), clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto wloc = m.PrepareWrite(clock, id, 0);
  ASSERT_TRUE(wloc.ok());
  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  auto out = m.ExecuteRepairPlan(clock, plans[0]);

  // The prepared write has not completed: even though nothing moved the
  // epoch yet, the commit must refuse — the writer could still land
  // bytes on a survivor that the copied target would miss.
  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 0u);
  EXPECT_TRUE(requeue);

  // Once the write closes, the next cycle publishes normally.
  m.CompleteWrite(wloc->key);
  auto recreated = m.RepairReplication(clock);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 1u);
  ExpectFullyReplicated(rig, id, 1, 2);
}

TEST(MaintenanceTest, ScrubSparesInFlightRepairTargets) {
  Rig rig(/*replication=*/2, kQuiet);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 24);
  const store::FileId id = WriteStoreFile(c, "/sc", 1, v1, clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  const auto target = static_cast<size_t>(plans[0].targets[0]);
  auto out = m.ExecuteRepairPlan(clock, plans[0]);
  ASSERT_TRUE(rig.store->benefactor(target).HasChunk(key));

  // A scrub between copy and commit must not reap the target as an
  // orphan nor "fix" its reservation: the copy is legitimately ahead of
  // the replica lists.
  auto scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
  EXPECT_TRUE(rig.store->benefactor(target).HasChunk(key));

  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 1u);
  EXPECT_FALSE(requeue);
  ExpectFullyReplicated(rig, id, 1, 2);
  // Post-commit the target is a named replica — still nothing to reap,
  // and the published copy serves the data.
  scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  std::vector<uint8_t> got(kChunk);
  sim::VirtualClock rc(clock.now());
  ASSERT_TRUE(rig.store->benefactor(target).ReadChunk(rc, key, got).ok());
  EXPECT_EQ(got, v1);
}

TEST(MaintenanceTest, RacingRepairsSameTargetKeepThePublishedReplica) {
  Rig rig(/*replication=*/2, kQuiet);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto v1 = Pattern(kChunk, 31);
  const store::FileId id = WriteStoreFile(c, "/dup", 1, v1, clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  // Overload one of the two non-holders so both racing plans pick the
  // other as their (least-loaded) target.
  int forced = -1, spare = -1;
  for (int b = 0; b < kBenefactors; ++b) {
    if (b == loc0->benefactors[0] || b == loc0->benefactors[1]) continue;
    (forced < 0 ? forced : spare) = b;
  }
  ASSERT_TRUE(
      rig.store->benefactor(static_cast<size_t>(spare)).ReserveChunks(16).ok());

  // Two drivers (maintenance worker + manual repair) plan the same key.
  auto plansA = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  auto plansB = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plansA.size(), 1u);
  ASSERT_EQ(plansB.size(), 1u);
  ASSERT_EQ(plansA[0].targets, plansB[0].targets);
  const int target = plansA[0].targets[0];
  ASSERT_EQ(target, forced);

  auto outA = m.ExecuteRepairPlan(clock, plansA[0]);
  EXPECT_EQ(m.CommitRepair(outA), 1u);  // A publishes {survivor, target}

  // B copied onto the same target; its commit loses the race (the list
  // changed under it) but must NOT tear down the replica A published —
  // only B's duplicate reservation comes back.
  const uint64_t used_mid =
      rig.store->benefactor(static_cast<size_t>(target)).bytes_used();
  auto outB = m.ExecuteRepairPlan(clock, plansB[0]);
  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(outB, &requeue), 0u);
  EXPECT_TRUE(requeue);
  EXPECT_TRUE(
      rig.store->benefactor(static_cast<size_t>(target)).HasChunk(key));
  EXPECT_EQ(rig.store->benefactor(static_cast<size_t>(target)).bytes_used(),
            used_mid - kChunk);
  ExpectFullyReplicated(rig, id, 1, 2);

  // The requeued retry finds the chunk healthy (no-op) and the data
  // reads back intact off the repaired replica; accounting is clean.
  auto recreated = m.RepairReplication(clock);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 0u);
  std::vector<uint8_t> got(kChunk);
  sim::VirtualClock rc(clock.now());
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(target))
                  .ReadChunk(rc, key, got)
                  .ok());
  EXPECT_EQ(got, v1);
  rig.store->benefactor(static_cast<size_t>(spare)).ReleaseChunkReservation(16);
  auto scrub = m.ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
}

TEST(MaintenanceTest, LastSurvivorDeathBetweenPlanAndCopyRequeues) {
  Rig rig(/*replication=*/2, kQuiet);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/gone", 1, Pattern(kChunk, 41), clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());
  const store::ChunkKey key = loc0->key;
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();

  auto plans = m.PlanRepairs(std::vector<store::ChunkKey>{key});
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].targets.size(), 1u);
  const auto target = static_cast<size_t>(plans[0].targets[0]);
  // The last survivor dies before the copy can read it.
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[0])).Kill();
  auto out = m.ExecuteRepairPlan(clock, plans[0]);
  EXPECT_TRUE(out.written.empty());
  EXPECT_EQ(out.failed.size(), 1u);

  // Nothing was copied, but the chunk must not silently leave the repair
  // queue: the commit undoes the target AND asks for a prompt retry.
  bool requeue = false;
  EXPECT_EQ(m.CommitRepair(out, &requeue), 0u);
  EXPECT_TRUE(requeue);
  EXPECT_FALSE(rig.store->benefactor(target).HasChunk(key));

  // The retry discovers the truth — every replica is gone (lost chunk) —
  // so the requeue loop terminates rather than spinning.
  uint64_t lost = 0;
  EXPECT_TRUE(m.PlanRepairs(std::vector<store::ChunkKey>{key}, &lost).empty());
  EXPECT_EQ(lost, 1u);
}

TEST(MaintenanceTest, FailedPrepareBatchLeavesNoRepairFence) {
  Rig rig(/*replication=*/2, kQuiet);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/batch", 1, Pattern(kChunk, 51), clock);
  auto loc0 = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc0.ok());

  // A batch that dies mid-way (second index beyond EOF) must close the
  // write it had already opened for chunk 0 ...
  const std::vector<uint32_t> indices = {0, 5};
  EXPECT_FALSE(m.PrepareWriteBatch(clock, id, indices).ok());

  // ... otherwise this repair could never commit (the leaked fence would
  // requeue it forever).
  rig.store->benefactor(static_cast<size_t>(loc0->benefactors[1])).Kill();
  auto recreated = m.RepairReplication(clock);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 1u);
  ExpectFullyReplicated(rig, id, 1, 2);
}

// ---- concurrency (runs under TSan via the `concurrency` label) ----

TEST(MaintenanceConcurrencyTest, ConcurrentWritersConvergeAfterMidRunKill) {
  Rig rig(/*replication=*/2);
  constexpr int kThreads = 4;
  constexpr uint32_t kChunksPerFile = 6;
  constexpr int kRounds = 3;

  // One client per node, one file per thread, created up front.
  std::vector<store::StoreClient*> clients;
  std::vector<store::FileId> files;
  for (int t = 0; t < kThreads; ++t) {
    store::StoreClient& c = rig.store->ClientForNode(t);
    clients.push_back(&c);
    sim::VirtualClock clock(0);
    auto id = c.Create(clock, "/mt" + std::to_string(t));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(c.Fallocate(clock, *id, kChunksPerFile * kChunk).ok());
    files.push_back(*id);
  }

  // Writers hammer their files while a benefactor dies under them: every
  // degraded write feeds the repair queue as the worker races the writers
  // (stale-copy commits get requeued via the epoch check).
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sim::VirtualClock clock(0);
      Bitmap all(kChunk / clients[t]->config().page_bytes);
      all.SetAll();
      for (int round = 0; round < kRounds; ++round) {
        const auto data = Pattern(kChunksPerFile * kChunk,
                                  static_cast<uint64_t>(t * 100 + round));
        for (uint32_t i = 0; i < kChunksPerFile; ++i) {
          ASSERT_TRUE(clients[t]
                          ->WriteChunkPages(clock, files[t], i, all,
                                            {data.data() + i * kChunk, kChunk})
                          .ok());
        }
        if (t == 0 && round == 0) rig.store->benefactor(2).Kill();
      }
    });
  }
  for (auto& th : threads) th.join();

  // Writers quiesced: one drain converges everything (virtual deadline
  // generous enough for the detector even if no write hit the dead
  // benefactor's replicas).
  rig.ms().RunUntil(rig.ms().now_ns() + 50 * kMs);
  EXPECT_TRUE(rig.ms().QueueEmpty());
  for (int t = 0; t < kThreads; ++t) {
    ExpectFullyReplicated(rig, files[t], kChunksPerFile, 2);
    // Each file reads back its final round exactly.
    const auto want = Pattern(kChunksPerFile * kChunk,
                              static_cast<uint64_t>(t * 100 + kRounds - 1));
    std::vector<uint8_t> buf(kChunk);
    sim::VirtualClock clock(100 * kMs);
    for (uint32_t i = 0; i < kChunksPerFile; ++i) {
      ASSERT_TRUE(clients[t]->ReadChunk(clock, files[t], i, buf).ok())
          << "file " << t << " chunk " << i;
      EXPECT_EQ(0, std::memcmp(buf.data(), want.data() + i * kChunk, kChunk))
          << "file " << t << " chunk " << i;
    }
  }
}

TEST(MaintenanceConcurrencyTest, HookDetachWaitsForInFlightSignals) {
  // Client threads may be inside ReportDegraded/MaintenanceTick while the
  // service is torn down; the detach must wait out any call already past
  // the hook-pointer load instead of destroying the service under it.
  // (Use-after-free would surface here under TSan/ASan.)
  net::ClusterConfig cc;
  cc.num_nodes = 2;
  net::Cluster cluster(cc);
  store::StoreConfig cfg;
  cfg.chunk_bytes = kChunk;
  store::Manager mgr(cluster, 0, cfg);
  store::ChunkKey key;
  key.origin_file = 1;
  key.index = 0;
  key.version = 0;

  std::atomic<bool> stop{false};
  std::thread signaller([&] {
    int64_t t = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      mgr.ReportDegraded(key, ++t);
      mgr.MaintenanceTick(t);
    }
  });
  // Each round attaches a fresh service and detaches it in the
  // destructor while the signaller hammers the hooks.
  for (int i = 0; i < 100; ++i) {
    store::MaintenanceService svc(mgr);
  }
  stop.store(true, std::memory_order_relaxed);
  signaller.join();
}

}  // namespace
}  // namespace nvm

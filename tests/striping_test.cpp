// Tests for the chunk-placement (striping) policies.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

namespace nvm::store {
namespace {

constexpr uint64_t kChunk = 64_KiB;

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<AggregateStore> store;

  explicit Rig(StripePolicy policy, uint64_t contribution = 4_MiB) {
    net::ClusterConfig cc;
    cc.num_nodes = 4;
    cluster = std::make_unique<net::Cluster>(cc);
    AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.stripe_policy = policy;
    // A benefactor on every node, including the clients'.
    sc.benefactor_nodes = {0, 1, 2, 3};
    sc.contribution_bytes = contribution;
    sc.manager_node = 1;
    store = std::make_unique<AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }
};

TEST(StripingTest, RoundRobinSpreadsEvenly) {
  Rig rig(StripePolicy::kRoundRobin);
  auto& client = rig.store->ClientForNode(0);
  auto& clock = sim::CurrentClock();
  auto id = client.Create(clock, "/rr");
  ASSERT_TRUE(client.Fallocate(clock, *id, 16 * kChunk).ok());
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(rig.store->benefactor(b).bytes_used(), 4 * kChunk)
        << "benefactor " << b;
  }
}

TEST(StripingTest, LocalityAwarePrefersClientNode) {
  Rig rig(StripePolicy::kLocalityAware);
  auto& client = rig.store->ClientForNode(2);  // benefactor 2 is co-located
  auto& clock = sim::CurrentClock();
  auto id = client.Create(clock, "/local");
  ASSERT_TRUE(client.Fallocate(clock, *id, 8 * kChunk).ok());
  EXPECT_EQ(rig.store->benefactor(2).bytes_used(), 8 * kChunk);
  EXPECT_EQ(rig.store->benefactor(0).bytes_used(), 0u);
}

TEST(StripingTest, LocalityAwareSpillsWhenLocalIsFull) {
  Rig rig(StripePolicy::kLocalityAware, /*contribution=*/4 * kChunk);
  auto& client = rig.store->ClientForNode(2);
  auto& clock = sim::CurrentClock();
  auto id = client.Create(clock, "/spill");
  // 6 chunks: 4 fit locally, 2 must spill elsewhere.
  ASSERT_TRUE(client.Fallocate(clock, *id, 6 * kChunk).ok());
  EXPECT_EQ(rig.store->benefactor(2).bytes_used(), 4 * kChunk);
  uint64_t elsewhere = 0;
  for (size_t b = 0; b < 4; ++b) {
    if (b != 2) elsewhere += rig.store->benefactor(b).bytes_used();
  }
  EXPECT_EQ(elsewhere, 2 * kChunk);
}

TEST(StripingTest, LocalityAwareFallsBackWithoutLocalBenefactor) {
  // Client on a node with no benefactor: behaves like round-robin.
  net::ClusterConfig cc;
  cc.num_nodes = 4;
  net::Cluster cluster(cc);
  AggregateStoreConfig sc;
  sc.store.chunk_bytes = kChunk;
  sc.store.stripe_policy = StripePolicy::kLocalityAware;
  sc.benefactor_nodes = {1, 2};
  sc.contribution_bytes = 4_MiB;
  sc.manager_node = 1;
  AggregateStore store(cluster, sc);
  auto& client = store.ClientForNode(0);
  auto& clock = sim::CurrentClock();
  auto id = client.Create(clock, "/nolocal");
  ASSERT_TRUE(client.Fallocate(clock, *id, 4 * kChunk).ok());
  EXPECT_EQ(store.benefactor(0).bytes_used() +
                store.benefactor(1).bytes_used(),
            4 * kChunk);
}

TEST(StripingTest, CapacityBalancedFillsTheEmptiest) {
  Rig rig(StripePolicy::kCapacityBalanced);
  auto& client = rig.store->ClientForNode(0);
  auto& clock = sim::CurrentClock();

  // Pre-skew the store with one file, then check that later allocations
  // level everything out (the policy always picks the emptiest).
  auto skew = client.Create(clock, "/skew");
  ASSERT_TRUE(client.Fallocate(clock, *skew, 8 * kChunk).ok());

  auto id = client.Create(clock, "/balance");
  ASSERT_TRUE(client.Fallocate(clock, *id, 24 * kChunk).ok());
  // 32 chunks over 4 equal benefactors: perfect balance within 1 chunk.
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  for (size_t b = 0; b < 4; ++b) {
    lo = std::min(lo, rig.store->benefactor(b).bytes_used());
    hi = std::max(hi, rig.store->benefactor(b).bytes_used());
  }
  EXPECT_LE(hi - lo, kChunk);
}

TEST(StripingTest, LocalityReducesNetworkTraffic) {
  // The point of the policy: a client streaming its own variable touches
  // the network far less when its chunks are co-located.
  auto run = [&](StripePolicy policy) {
    Rig rig(policy);
    auto& client = rig.store->ClientForNode(2);
    auto& clock = sim::CurrentClock();
    auto id = client.Create(clock, "/stream");
    NVM_CHECK(client.Fallocate(clock, *id, 16 * kChunk).ok());
    Bitmap all(kChunk / 4_KiB);
    all.SetAll();
    std::vector<uint8_t> img(kChunk, 7);
    for (uint32_t c = 0; c < 16; ++c) {
      NVM_CHECK(client.WriteChunkPages(clock, *id, c, all, img).ok());
    }
    std::vector<uint8_t> buf(kChunk);
    for (uint32_t c = 0; c < 16; ++c) {
      NVM_CHECK(client.ReadChunk(clock, *id, c, buf).ok());
    }
    return rig.cluster->network().remote_bytes();
  };
  const uint64_t remote_rr = run(StripePolicy::kRoundRobin);
  const uint64_t remote_local = run(StripePolicy::kLocalityAware);
  EXPECT_LT(remote_local, remote_rr / 4);
}

}  // namespace
}  // namespace nvm::store

// Failure-injection and reconfiguration tests: benefactor crashes during
// live workloads (with and without replication), heartbeat-driven
// liveness, allocation rerouting around dead benefactors, and the
// decommission/drain path for hardware upgrades.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "common/rng.hpp"
#include "nvmalloc/runtime.hpp"
#include "sim/clock.hpp"
#include "workloads/matmul.hpp"
#include "workloads/testbed.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int64_t kMs = 1'000'000;  // virtual ns per millisecond

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;

  explicit Rig(int replication, int benefactors = 4, bool maintenance = false,
               std::function<void(store::StoreConfig&)> tweak = {}) {
    net::ClusterConfig cc;
    cc.num_nodes = static_cast<size_t>(benefactors + 1);
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = replication;
    if (maintenance) {
      sc.store.maintenance = true;
      sc.store.heartbeat_period_ms = 1;
      sc.store.heartbeat_misses = 3;
      sc.store.scrub_period_ms = 50;
    }
    if (tweak) tweak(sc.store);
    for (int b = 0; b < benefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }
};

std::vector<uint8_t> Pattern(uint64_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

TEST(FailureTest, RegionSurvivesBenefactorDeathWithReplication) {
  Rig rig(/*replication=*/2);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(8 * kChunk, 1);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  // Drop all cached state (both the mapped-in pages and the chunk
  // cache), kill one benefactor, read everything back from the store.
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  rig.store->benefactor(1).Kill();
  std::vector<uint8_t> got(8 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);
  ASSERT_TRUE(runtime.SsdFree(*r).ok());
}

TEST(FailureTest, UnreplicatedReadsFailCleanlyAfterDeath) {
  Rig rig(/*replication=*/1);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE((*r)->Write(0, Pattern(8 * kChunk, 2)).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  rig.store->benefactor(0).Kill();

  // Some chunks are on the dead benefactor: reads return UNAVAILABLE, not
  // garbage and not a crash.
  int failures = 0;
  std::vector<uint8_t> buf(kChunk);
  for (uint32_t c = 0; c < 8; ++c) {
    Status s = (*r)->Read(static_cast<uint64_t>(c) * kChunk, buf);
    if (!s.ok()) {
      EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
      ++failures;
    }
  }
  EXPECT_EQ(failures, 2);  // 8 chunks striped over 4 benefactors
}

TEST(FailureTest, AllocationRoutesAroundDeadBenefactors) {
  Rig rig(1);
  rig.store->benefactor(0).Kill();
  rig.store->benefactor(2).Kill();
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(8 * kChunk, 3);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  EXPECT_EQ(rig.store->benefactor(0).num_chunks(), 0u);
  EXPECT_EQ(rig.store->benefactor(2).num_chunks(), 0u);
  std::vector<uint8_t> got(8 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);
}

TEST(FailureTest, HeartbeatTracksChurn) {
  Rig rig(1);
  auto& m = rig.store->manager();
  auto& clock = sim::CurrentClock();
  EXPECT_EQ(m.CheckLiveness(clock), 4u);
  rig.store->benefactor(0).Kill();
  rig.store->benefactor(3).Kill();
  EXPECT_EQ(m.CheckLiveness(clock), 2u);
  EXPECT_EQ(m.AliveBenefactors(), (std::vector<int>{1, 2}));
  rig.store->benefactor(0).Revive();
  EXPECT_EQ(m.CheckLiveness(clock), 3u);
  // Heartbeats cost modelled time (manager service + pings).
  const int64_t before = clock.now();
  m.CheckLiveness(clock);
  EXPECT_GT(clock.now(), before);
}

TEST(FailureTest, MidRunDeathFailsWorkloadCleanly) {
  // Kill a benefactor while a region is half-written; continued use must
  // produce clean UNAVAILABLE errors (no corruption, no crash).
  Rig rig(1);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(16 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(16 * kChunk, 4);
  ASSERT_TRUE((*r)->Write(0, {data.data(), 8 * kChunk}).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  rig.store->benefactor(2).Kill();

  int errors = 0;
  for (uint32_t c = 8; c < 16; ++c) {
    Status s = (*r)->Write(static_cast<uint64_t>(c) * kChunk,
                           {data.data() + c * kChunk, kChunk});
    if (!s.ok()) ++errors;
    s = (*r)->Sync();
    if (!s.ok()) ++errors;
  }
  EXPECT_GT(errors, 0);
  // Chunks on surviving benefactors still read back intact.
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  std::vector<uint8_t> buf(kChunk);
  int readable = 0;
  for (uint32_t c = 0; c < 8; ++c) {
    if ((*r)->Read(static_cast<uint64_t>(c) * kChunk, buf).ok()) {
      EXPECT_TRUE(std::equal(buf.begin(), buf.end(),
                             data.begin() + c * kChunk));
      ++readable;
    }
  }
  EXPECT_GE(readable, 6);  // all chunks not striped onto the dead node
}

// ---- mid-run death on the batched read path ----

store::FileId WriteStoreFile(store::StoreClient& c, const std::string& name,
                             uint32_t chunks,
                             const std::vector<uint8_t>& data) {
  sim::VirtualClock clock(0);
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < chunks; ++i) {
    EXPECT_TRUE(c.WriteChunkPages(clock, *id, i, all,
                                  {data.data() + i * kChunk, kChunk})
                    .ok());
  }
  return *id;
}

// The primary benefactor of at least two of the file's chunks — its run
// dies with one chunk already streamed and more still owed.
int PrimaryOfAtLeastTwo(store::Manager& m, store::FileId id,
                        uint32_t chunks) {
  auto locs = m.GetReadLocations(sim::CurrentClock(), id, 0, chunks);
  EXPECT_TRUE(locs.ok());
  std::vector<int> primaries(8, 0);
  for (const store::ReadLocation& loc : *locs) {
    EXPECT_FALSE(loc.benefactors.empty());
    ++primaries[static_cast<size_t>(loc.benefactors.front())];
  }
  for (size_t b = 0; b < primaries.size(); ++b) {
    if (primaries[b] >= 2) return static_cast<int>(b);
  }
  return -1;
}

TEST(FailureTest, BatchedRunFailsOverToReplicasWhenBenefactorDiesMidRun) {
  // A benefactor dies after streaming the first chunk of its run.  The
  // whole run must fail cleanly and the client must re-read every chunk of
  // the run from the surviving replicas — including the chunk it already
  // streamed — so the caller sees a fully successful batched read.
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  constexpr uint32_t kChunks = 8;
  const auto data = Pattern(kChunks * kChunk, 21);
  const store::FileId id = WriteStoreFile(c, "/midrun2", kChunks, data);

  const int victim = PrimaryOfAtLeastTwo(rig.store->manager(), id, kChunks);
  ASSERT_GE(victim, 0);
  rig.store->benefactor(static_cast<size_t>(victim)).KillAfterReads(1);

  sim::VirtualClock clock(0);
  std::vector<std::vector<uint8_t>> bufs(kChunks,
                                         std::vector<uint8_t>(kChunk));
  std::vector<store::StoreClient::ChunkFetch> fetches(kChunks);
  for (uint32_t i = 0; i < kChunks; ++i) {
    fetches[i].index = i;
    fetches[i].out = bufs[i];
  }
  ASSERT_TRUE(c.ReadChunks(clock, id, fetches).ok());
  for (uint32_t i = 0; i < kChunks; ++i) {
    EXPECT_TRUE(fetches[i].status.ok()) << "chunk " << i;
    EXPECT_EQ(0, std::memcmp(bufs[i].data(), data.data() + i * kChunk,
                             kChunk))
        << "chunk " << i;
  }
  // The failure was detected and reported to the manager.
  EXPECT_FALSE(rig.store->benefactor(static_cast<size_t>(victim)).alive());
}

TEST(FailureTest, MidRunDeathSurfacesNoPartialChunksWithoutReplicas) {
  // Same mid-run death, but with no replicas to fall back to: every chunk
  // of the failed run must report a clean UNAVAILABLE — including the one
  // the benefactor streamed before dying.  A partial run must never be
  // silently surfaced as data.
  Rig rig(/*replication=*/1);
  store::StoreClient& c = rig.store->ClientForNode(0);
  constexpr uint32_t kChunks = 8;
  const auto data = Pattern(kChunks * kChunk, 22);
  const store::FileId id = WriteStoreFile(c, "/midrun1", kChunks, data);

  auto locs = rig.store->manager().GetReadLocations(sim::CurrentClock(), id,
                                                    0, kChunks);
  ASSERT_TRUE(locs.ok());
  const int victim = PrimaryOfAtLeastTwo(rig.store->manager(), id, kChunks);
  ASSERT_GE(victim, 0);
  rig.store->benefactor(static_cast<size_t>(victim)).KillAfterReads(1);

  sim::VirtualClock clock(0);
  std::vector<std::vector<uint8_t>> bufs(kChunks,
                                         std::vector<uint8_t>(kChunk));
  std::vector<store::StoreClient::ChunkFetch> fetches(kChunks);
  for (uint32_t i = 0; i < kChunks; ++i) {
    fetches[i].index = i;
    fetches[i].out = bufs[i];
  }
  ASSERT_TRUE(c.ReadChunks(clock, id, fetches).ok());

  int failed = 0;
  for (uint32_t i = 0; i < kChunks; ++i) {
    if ((*locs)[i].benefactors.front() == victim) {
      EXPECT_FALSE(fetches[i].status.ok()) << "chunk " << i;
      EXPECT_EQ(fetches[i].status.code(), ErrorCode::kUnavailable);
      ++failed;
    } else {
      EXPECT_TRUE(fetches[i].status.ok()) << "chunk " << i;
      EXPECT_EQ(0, std::memcmp(bufs[i].data(), data.data() + i * kChunk,
                               kChunk))
          << "chunk " << i;
    }
  }
  EXPECT_GE(failed, 2);
  EXPECT_FALSE(rig.store->benefactor(static_cast<size_t>(victim)).alive());
}

// ---- mid-run death on the batched write path ----

// A benefactor that holds replicas of at least two of the file's chunks —
// its write run dies with one chunk already applied and more still owed.
int ReplicaHolderOfAtLeastTwo(store::Manager& m, store::FileId id,
                              uint32_t chunks) {
  auto locs = m.GetReadLocations(sim::CurrentClock(), id, 0, chunks);
  EXPECT_TRUE(locs.ok());
  std::vector<int> held(8, 0);
  for (const store::ReadLocation& loc : *locs) {
    for (int b : loc.benefactors) ++held[static_cast<size_t>(b)];
  }
  for (size_t b = 0; b < held.size(); ++b) {
    if (held[b] >= 2) return static_cast<int>(b);
  }
  return -1;
}

TEST(FailureTest, ReplicaDeathMidWriteRunDegradesWithoutDataLoss) {
  // A replica holder dies after applying the first chunk of its write run.
  // The whole run fails, the per-chunk fallback against the dead
  // benefactor fails too, and every chunk must still land on its
  // surviving replica: a degraded success, with the death reported and no
  // stale replica ever surfaced to readers.
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  constexpr uint32_t kChunks = 8;
  const auto before = Pattern(kChunks * kChunk, 23);
  const store::FileId id = WriteStoreFile(c, "/wmidrun2", kChunks, before);

  const int victim =
      ReplicaHolderOfAtLeastTwo(rig.store->manager(), id, kChunks);
  ASSERT_GE(victim, 0);
  rig.store->benefactor(static_cast<size_t>(victim)).KillAfterWrites(1);

  const auto after = Pattern(kChunks * kChunk, 24);
  sim::VirtualClock clock(0);
  std::vector<Bitmap> dirty(kChunks,
                            Bitmap(kChunk / c.config().page_bytes));
  std::vector<store::StoreClient::ChunkWrite> writes(kChunks);
  for (uint32_t i = 0; i < kChunks; ++i) {
    dirty[i].SetAll();
    writes[i].index = i;
    writes[i].dirty = &dirty[i];
    writes[i].image = {after.data() + i * kChunk, kChunk};
  }
  ASSERT_TRUE(c.WriteChunks(clock, id, writes).ok());
  for (uint32_t i = 0; i < kChunks; ++i) {
    EXPECT_TRUE(writes[i].status.ok()) << "chunk " << i;
  }
  EXPECT_GT(c.degraded_writes(), 0u);
  EXPECT_FALSE(rig.store->benefactor(static_cast<size_t>(victim)).alive());

  // Readers see only the new bytes: the partially-written dead replica is
  // never consulted, the surviving replicas carry the whole update.
  std::vector<uint8_t> buf(kChunk);
  sim::VirtualClock rclock(0);
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(c.ReadChunk(rclock, id, i, buf).ok()) << "chunk " << i;
    EXPECT_EQ(0, std::memcmp(buf.data(), after.data() + i * kChunk, kChunk))
        << "chunk " << i;
  }
}

TEST(FailureTest, UnreplicatedWriteRunDeathFailsOnlyTheDeadChunks) {
  // No replicas: the chunks owed to the dead benefactor must fail with a
  // clean UNAVAILABLE (no partial run silently counted as flushed), while
  // chunks on surviving benefactors still succeed.
  Rig rig(/*replication=*/1);
  store::StoreClient& c = rig.store->ClientForNode(0);
  constexpr uint32_t kChunks = 8;
  const auto before = Pattern(kChunks * kChunk, 25);
  const store::FileId id = WriteStoreFile(c, "/wmidrun1", kChunks, before);

  auto locs = rig.store->manager().GetReadLocations(sim::CurrentClock(), id,
                                                    0, kChunks);
  ASSERT_TRUE(locs.ok());
  const int victim =
      ReplicaHolderOfAtLeastTwo(rig.store->manager(), id, kChunks);
  ASSERT_GE(victim, 0);
  rig.store->benefactor(static_cast<size_t>(victim)).KillAfterWrites(1);

  const uint64_t flushed_before = c.bytes_flushed();
  const auto after = Pattern(kChunks * kChunk, 26);
  sim::VirtualClock clock(0);
  std::vector<Bitmap> dirty(kChunks,
                            Bitmap(kChunk / c.config().page_bytes));
  std::vector<store::StoreClient::ChunkWrite> writes(kChunks);
  for (uint32_t i = 0; i < kChunks; ++i) {
    dirty[i].SetAll();
    writes[i].index = i;
    writes[i].dirty = &dirty[i];
    writes[i].image = {after.data() + i * kChunk, kChunk};
  }
  ASSERT_TRUE(c.WriteChunks(clock, id, writes).ok());

  uint32_t failed = 0;
  uint64_t flushed_chunks = 0;
  for (uint32_t i = 0; i < kChunks; ++i) {
    if ((*locs)[i].benefactors.front() == victim) {
      EXPECT_FALSE(writes[i].status.ok()) << "chunk " << i;
      EXPECT_EQ(writes[i].status.code(), ErrorCode::kUnavailable);
      ++failed;
    } else {
      EXPECT_TRUE(writes[i].status.ok()) << "chunk " << i;
      ++flushed_chunks;
    }
  }
  EXPECT_GE(failed, 2u);
  // Flushed-byte accounting covers exactly the successful chunks — a
  // discarded run contributes nothing.
  EXPECT_EQ(c.bytes_flushed() - flushed_before, flushed_chunks * kChunk);
  EXPECT_FALSE(rig.store->benefactor(static_cast<size_t>(victim)).alive());
}

// ---- decommission / drain ----

TEST(DecommissionTest, DrainMigratesDataAndRetiresBenefactor) {
  Rig rig(1);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(16 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(16 * kChunk, 5);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());

  const size_t victim_chunks = rig.store->benefactor(1).num_chunks();
  EXPECT_GT(victim_chunks, 0u);
  auto migrated =
      rig.store->manager().Decommission(sim::CurrentClock(), 1);
  ASSERT_TRUE(migrated.ok());
  EXPECT_EQ(*migrated, victim_chunks);
  EXPECT_EQ(rig.store->benefactor(1).num_chunks(), 0u);
  EXPECT_FALSE(rig.store->benefactor(1).alive());

  // Every byte still readable after dropping caches.
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  std::vector<uint8_t> got(16 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);
  ASSERT_TRUE(runtime.SsdFree(*r).ok());
}

TEST(DecommissionTest, SharedCheckpointChunksMigrateOnce) {
  Rig rig(1);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(8 * kChunk, 6);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  CheckpointSpec spec;
  spec.nvm.push_back(*r);
  ASSERT_TRUE(runtime.SsdCheckpoint(spec, "/ckpt/drain").ok());

  // The variable's chunks are shared with the checkpoint; draining the
  // benefactor must keep both views intact.
  auto migrated =
      rig.store->manager().Decommission(sim::CurrentClock(), 0);
  ASSERT_TRUE(migrated.ok());

  auto fresh = runtime.SsdMalloc(8 * kChunk);
  RestoreSpec restore;
  restore.nvm.push_back(*fresh);
  ASSERT_TRUE(runtime.SsdRestart("/ckpt/drain", restore).ok());
  std::vector<uint8_t> got(8 * kChunk);
  ASSERT_TRUE((*fresh)->Read(0, got).ok());
  EXPECT_EQ(got, data);
}

TEST(DecommissionTest, SequentialDrainsConsolidateOntoSurvivors) {
  Rig rig(1);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(12 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(12 * kChunk, 7);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());

  auto& m = rig.store->manager();
  ASSERT_TRUE(m.Decommission(sim::CurrentClock(), 0).ok());
  ASSERT_TRUE(m.Decommission(sim::CurrentClock(), 1).ok());
  // Two survivors hold everything.
  EXPECT_EQ(rig.store->benefactor(0).num_chunks() +
                rig.store->benefactor(1).num_chunks(),
            0u);
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  std::vector<uint8_t> got(12 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);

  // Draining a dead benefactor is refused.
  EXPECT_EQ(m.Decommission(sim::CurrentClock(), 0).status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST(DecommissionTest, ChargesDataMovementTime) {
  Rig rig(1);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(16 * kChunk);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE((*r)->Write(0, Pattern(16 * kChunk, 8)).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  auto& clock = sim::CurrentClock();
  const int64_t before = clock.now();
  ASSERT_TRUE(rig.store->manager().Decommission(clock, 0).ok());
  // 4 chunks moved: at least read+transfer+write per chunk.
  EXPECT_GT(clock.now() - before, 4 * 500'000);
}

// ---- replication repair ----

TEST(RepairTest, RestoresReplicationAfterLoss) {
  Rig rig(/*replication=*/2);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(8 * kChunk, 11);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());

  rig.store->benefactor(2).Kill();
  uint64_t lost = 0;
  auto recreated =
      rig.store->manager().RepairReplication(sim::CurrentClock(), &lost);
  ASSERT_TRUE(recreated.ok());
  EXPECT_GT(*recreated, 0u);
  EXPECT_EQ(lost, 0u);

  // After repair, even a SECOND failure cannot lose data.
  rig.store->benefactor(0).Kill();
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  std::vector<uint8_t> got(8 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);
}

TEST(RepairTest, CountsUnrecoverableChunks) {
  Rig rig(/*replication=*/1);  // no replicas: death means loss
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE((*r)->Write(0, Pattern(8 * kChunk, 12)).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  rig.store->benefactor(1).Kill();
  uint64_t lost = 0;
  auto recreated =
      rig.store->manager().RepairReplication(sim::CurrentClock(), &lost);
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ(*recreated, 0u);
  EXPECT_EQ(lost, 2u);  // 8 chunks over 4 benefactors
}

TEST(RepairTest, SharedCheckpointChunksRepairedOnce) {
  Rig rig(/*replication=*/2);
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(4 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(4 * kChunk, 13);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  CheckpointSpec spec;
  spec.nvm.push_back(*r);
  ASSERT_TRUE(runtime.SsdCheckpoint(spec, "/ckpt/repair").ok());

  rig.store->benefactor(0).Kill();
  auto recreated =
      rig.store->manager().RepairReplication(sim::CurrentClock(), nullptr);
  ASSERT_TRUE(recreated.ok());
  // Chunks shared between the live file and the checkpoint were repaired
  // once each, not once per referencing file.
  EXPECT_LE(*recreated, 4u + 1u);  // variable chunks + ckpt header chunk

  auto fresh = runtime.SsdMalloc(4 * kChunk);
  RestoreSpec restore;
  restore.nvm.push_back(*fresh);
  ASSERT_TRUE(runtime.SsdRestart("/ckpt/repair", restore).ok());
  std::vector<uint8_t> got(4 * kChunk);
  ASSERT_TRUE((*fresh)->Read(0, got).ok());
  EXPECT_EQ(got, data);
}

TEST(RepairTest, MaintenanceSelfHealsMidWorkloadKillEndToEnd) {
  // The full story, with NO manual RepairReplication call anywhere: a
  // benefactor dies in the middle of a replicated workload, the degraded
  // writes report the affected chunks (and the heartbeat detector catches
  // the untouched ones), and the background service restores full
  // replication within a bounded virtual-time window — proven by killing a
  // SECOND benefactor afterwards and reading every byte back.
  Rig rig(/*replication=*/2, /*benefactors=*/4, /*maintenance=*/true);
  store::MaintenanceService& ms = *rig.store->maintenance();
  NvmallocRuntime runtime(*rig.store, 0);
  auto r = runtime.SsdMalloc(16 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(16 * kChunk, 31);

  // First half lands healthy; the victim dies; the second half completes
  // as degraded successes that feed the repair queue.
  ASSERT_TRUE((*r)->Write(0, {data.data(), 8 * kChunk}).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  rig.store->benefactor(1).Kill();
  ASSERT_TRUE((*r)->Write(8 * kChunk, {data.data() + 8 * kChunk,
                                       8 * kChunk})
                  .ok());
  ASSERT_TRUE((*r)->Sync().ok());

  // Bounded convergence in virtual time.  The window is generous: the
  // cache's write-back runs fork clocks that can report degraded chunks
  // tens of virtual ms ahead of the worker, and repair begins no earlier
  // than the latest report it batches.
  const int64_t deadline = ms.now_ns() + 100 * kMs;
  ms.RunUntil(deadline);
  const store::MaintenanceStats s = ms.stats();
  EXPECT_TRUE(ms.QueueEmpty());
  EXPECT_GT(s.replicas_recreated, 0u);
  EXPECT_EQ(s.lost_chunks, 0u);
  EXPECT_GE(s.converged_at_ns, 0);
  EXPECT_LE(s.converged_at_ns, deadline);

  // Every chunk is back at full replication on alive benefactors only.
  sim::VirtualClock vclock(0);
  auto locs = rig.store->manager().GetReadLocations(vclock, (*r)->file_id(),
                                                    0, 16);
  ASSERT_TRUE(locs.ok());
  for (const store::ReadLocation& loc : *locs) {
    EXPECT_EQ(loc.benefactors.size(), 2u);
    for (int b : loc.benefactors) {
      EXPECT_NE(b, 1);
      EXPECT_TRUE(rig.store->benefactor(static_cast<size_t>(b)).alive());
    }
  }

  // Replication held: a second death cannot lose data.
  rig.store->benefactor(0).Kill();
  (*r)->Invalidate();
  ASSERT_TRUE(
      runtime.mount().cache().Drop(sim::CurrentClock(), (*r)->file_id()).ok());
  std::vector<uint8_t> got(16 * kChunk);
  ASSERT_TRUE((*r)->Read(0, got).ok());
  EXPECT_EQ(got, data);
  ASSERT_TRUE(runtime.SsdFree(*r).ok());
}

// ---- workload-level resilience ----

TEST(FailureTest, MatmulCompletesWithReplicationAfterMidBcastDeath) {
  workloads::TestbedOptions to =
      workloads::MatmulTestbedOptions(4, false);
  to.compute_nodes = 4;
  to.store.replication = 2;
  workloads::Testbed tb(to);

  // Kill one benefactor *before* the run: placement avoids it, and reads
  // during compute fall over to replicas where needed.
  tb.store().benefactor(2).Kill();

  workloads::MatmulOptions o;
  o.matrix_bytes = 512_KiB;
  o.procs_per_node = 2;
  o.nodes = 4;
  o.tile = 16;
  auto r = workloads::RunMatmul(tb, o);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.verified);
}

// ---- integrity: bit rot, verifying reads, checksum scrub ----

// Store-level helpers (the integrity tests drive the store client
// directly, bypassing the mount cache, so every read hits a benefactor).
store::FileId WriteStoreFile(store::StoreClient& c, const std::string& name,
                             uint32_t chunks, const std::vector<uint8_t>& data,
                             sim::VirtualClock& clock) {
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < chunks; ++i) {
    EXPECT_TRUE(c.WriteChunkPages(clock, *id, i, all,
                                  {data.data() + i * kChunk, kChunk})
                    .ok());
  }
  return *id;
}

TEST(CorruptionTest, ReadFailsOverOnCorruptReplica) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 61);
  const store::FileId id = WriteStoreFile(c, "/rot", 1, data, clock);

  // Flip one bit on the primary replica — the one the client reads first.
  auto loc = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->benefactors.size(), 2u);
  const int rotten = loc->benefactors[0];
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(rotten))
                  .CorruptChunk(loc->key, /*byte_offset=*/17, /*xor_mask=*/0x04)
                  .ok());

  // The read must serve the exact original bytes via the other replica.
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_EQ(got, data);
  EXPECT_EQ(c.corrupt_failovers(), 1u);

  // The mismatch was reported: the rotten replica is quarantined (dropped
  // from the location map, its data deleted) and counted.
  EXPECT_EQ(m.corrupt_detected(), 1u);
  auto after = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->benefactors.size(), 1u);
  EXPECT_NE(after->benefactors[0], rotten);
  EXPECT_FALSE(
      rig.store->benefactor(static_cast<size_t>(rotten)).HasChunk(loc->key));
}

TEST(CorruptionTest, RepairRebuildsFromVerifiedSurvivor) {
  Rig rig(/*replication=*/2, /*benefactors=*/4, /*maintenance=*/true);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  store::MaintenanceService& ms = *rig.store->maintenance();
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 62);
  const store::FileId id = WriteStoreFile(c, "/heal", 1, data, clock);

  auto loc = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(loc->benefactors[0]))
                  .CorruptChunk(loc->key, 4096, 0x80)
                  .ok());

  // The failover read reports the corruption; background repair rebuilds
  // the quarantined replica from the surviving, re-verified copy.
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_EQ(got, data);
  ms.RunUntil(std::max(clock.now(), ms.now_ns()) + 100 * kMs);
  ASSERT_TRUE(ms.QueueEmpty());
  EXPECT_EQ(m.corrupt_detected(), 1u);
  EXPECT_EQ(m.corrupt_repaired(), 1u);

  // Back at full replication, and EVERY replica now serves the original
  // bytes when read directly off the benefactor.
  auto healed = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(healed.ok());
  ASSERT_EQ(healed->benefactors.size(), 2u);
  for (int b : healed->benefactors) {
    sim::VirtualClock rc(clock.now());
    ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(b))
                    .ReadChunk(rc, healed->key, got)
                    .ok());
    EXPECT_EQ(got, data) << "replica on benefactor " << b;
  }
}

TEST(CorruptionTest, CorruptAllReplicasSurfacesAsLostNotWrongBytes) {
  Rig rig(/*replication=*/2);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const store::FileId id =
      WriteStoreFile(c, "/gone", 1, Pattern(kChunk, 63), clock);

  auto loc = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  for (int b : loc->benefactors) {
    ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(b))
                    .CorruptChunk(loc->key, 99, 0x01)
                    .ok());
  }

  // Both replicas fail verification: the read errors (never serves rot),
  // and stripping the last replica records the chunk as lost.
  std::vector<uint8_t> got(kChunk);
  Status s = c.ReadChunk(clock, id, 0, got);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(c.corrupt_failovers(), 2u);
  EXPECT_EQ(m.corrupt_detected(), 2u);
  EXPECT_EQ(m.lost_chunks(), 1u);
}

TEST(CorruptionTest, ScrubFindsSilentRotEndToEnd) {
  // Nothing ever reads the rotted chunk: only the scrub's incremental
  // checksum verification can find it, quarantine it, and have repair
  // rebuild it — the full background detect-and-heal loop.
  Rig rig(/*replication=*/2, /*benefactors=*/4, /*maintenance=*/true);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  store::MaintenanceService& ms = *rig.store->maintenance();
  sim::VirtualClock clock(0);
  const auto data = Pattern(8 * kChunk, 64);
  const store::FileId id = WriteStoreFile(c, "/silent", 8, data, clock);

  auto loc = m.GetReadLocation(clock, id, 5);
  ASSERT_TRUE(loc.ok());
  const int rotten = loc->benefactors[0];
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(rotten))
                  .CorruptChunk(loc->key, 300, 0x20)
                  .ok());

  // Let the scrub cycle over the whole store (50 ms period in this rig).
  ms.RunUntil(std::max(clock.now(), ms.now_ns()) + 2'000 * kMs);
  ASSERT_TRUE(ms.QueueEmpty());
  const store::MaintenanceStats s = ms.stats();
  EXPECT_GE(s.scrub_chunks_verified, 8u);
  EXPECT_EQ(s.corrupt_chunks_detected, 1u);
  EXPECT_EQ(s.corrupt_chunks_repaired, 1u);
  EXPECT_EQ(m.lost_chunks(), 0u);

  // Healed: full replication, and a full read-back matches exactly.
  sim::VirtualClock rc(ms.now_ns());
  std::vector<uint8_t> got(kChunk);
  for (uint32_t i = 0; i < 8; ++i) {
    auto li = m.GetReadLocation(rc, id, i);
    ASSERT_TRUE(li.ok());
    EXPECT_EQ(li->benefactors.size(), 2u) << "chunk " << i;
    ASSERT_TRUE(c.ReadChunk(rc, id, i, got).ok());
    EXPECT_EQ(0, std::memcmp(got.data(), data.data() + i * kChunk, kChunk))
        << "chunk " << i;
  }
  EXPECT_EQ(c.corrupt_failovers(), 0u);  // nothing ever reached a reader
}

TEST(CorruptionTest, BlindPartialWriteSurvivesChecksumScrub) {
  // A page-granular writeback ships the full client image plus a dirty
  // bitmap, but the cache writes fully-covered pages blind — the clean
  // pages of the image may never have been faulted in.  The replicas
  // merge the dirty pages over their stored base, so the authoritative
  // checksum must cover the merged image, not the client's.  (Recording
  // the client-image CRC made the checksum scrub quarantine every such
  // chunk as corrupt — destroying the sole replica at replication=1.)
  Rig rig(/*replication=*/2, /*benefactors=*/4, /*maintenance=*/true);
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  store::MaintenanceService& ms = *rig.store->maintenance();
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 66);
  const store::FileId id = WriteStoreFile(c, "/blind", 1, data, clock);

  // Rewrite one page "blind": zeros everywhere else in the image, exactly
  // as a fresh cache slot that never faulted the rest of the chunk.
  const uint64_t page = c.config().page_bytes;
  Bitmap dirty(kChunk / page);
  dirty.Set(1);
  const auto patch = Pattern(page, 67);
  std::vector<uint8_t> image(kChunk, 0);
  std::memcpy(image.data() + page, patch.data(), page);
  ASSERT_TRUE(c.WriteChunkPages(clock, id, 0, dirty, image).ok());

  // A full scrub cycle over the store must find nothing to quarantine.
  ms.RunUntil(std::max(clock.now(), ms.now_ns()) + 2'000 * kMs);
  ASSERT_TRUE(ms.QueueEmpty());
  EXPECT_EQ(ms.stats().corrupt_chunks_detected, 0u);
  EXPECT_EQ(m.lost_chunks(), 0u);

  // Both replicas still stand, and a verifying read returns the merge:
  // old bytes outside the dirty page, the patch inside.
  sim::VirtualClock rc(ms.now_ns());
  auto loc = m.GetReadLocation(rc, id, 0);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->benefactors.size(), 2u);
  std::vector<uint8_t> expect = data;
  std::memcpy(expect.data() + page, patch.data(), page);
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(rc, id, 0, got).ok());
  EXPECT_EQ(got, expect);
  EXPECT_EQ(c.corrupt_failovers(), 0u);
}

TEST(CorruptionTest, VerifyOffServesRotSilently) {
  // Negative control for the knob: with the integrity layer off the same
  // flipped bit sails through to the reader — checksums, not luck, are
  // what the other tests are measuring.
  Rig rig(/*replication=*/2, /*benefactors=*/4, /*maintenance=*/false,
          [](store::StoreConfig& s) {
            s.verify_reads = false;
            s.scrub_verify = false;
          });
  store::StoreClient& c = rig.store->ClientForNode(0);
  store::Manager& m = rig.store->manager();
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 65);
  const store::FileId id = WriteStoreFile(c, "/unseen", 1, data, clock);

  auto loc = m.GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(loc->benefactors[0]))
                  .CorruptChunk(loc->key, 17, 0x04)
                  .ok());

  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, got).ok());
  EXPECT_NE(got, data);                  // rot reached the reader
  EXPECT_EQ(got[17], data[17] ^ 0x04);   // exactly the injected flip
  EXPECT_EQ(c.corrupt_failovers(), 0u);
  EXPECT_EQ(m.corrupt_detected(), 0u);
}

}  // namespace
}  // namespace nvm

// Conformance tests for the benefactor-side multi-chunk write RPC
// (Benefactor::WriteChunkRun + the batched StoreClient::WriteChunks path):
// request-count amortisation (a K-chunk flush window to one benefactor is
// exactly ONE write request), byte-for-byte equality of batched vs
// chunk-at-a-time write-back, virtual-time identity of a batch of one with
// the legacy per-chunk path (dense, partial-dirty and COW-clone cases),
// device-latency amortisation, parallel replica charging (a replicated
// flush costs max(replica times), not their sum), degraded writes when a
// replica dies, and a multi-process write storm over the streamed path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/store.hpp"

namespace nvm::store {
namespace {

constexpr uint64_t kChunk = 64_KiB;

std::vector<uint8_t> Pattern(uint64_t bytes, uint64_t seed) {
  std::vector<uint8_t> v(bytes);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<AggregateStore> store;

  explicit Rig(int benefactors, bool batch_write_rpc, int replication = 1,
               int client_nodes = 1, double nic_bw_mbps = 0.0) {
    net::ClusterConfig cc;
    cc.num_nodes = static_cast<size_t>(benefactors + client_nodes);
    if (nic_bw_mbps > 0.0) cc.network.nic_bw_mbps = nic_bw_mbps;
    cluster = std::make_unique<net::Cluster>(cc);
    AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.batch_write_rpc = batch_write_rpc;
    sc.store.replication = replication;
    for (int b = 0; b < benefactors; ++b) {
      sc.benefactor_nodes.push_back(client_nodes + b);
    }
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = client_nodes;
    store = std::make_unique<AggregateStore>(*cluster, sc);
  }

  StoreClient& client(int node = 0) { return store->ClientForNode(node); }

  // Create a file of `chunks` chunks (sparse: no data written yet).
  FileId CreateFile(const std::string& name, uint32_t chunks) {
    sim::VirtualClock clock(0);
    StoreClient& c = client();
    auto id = c.Create(clock, name);
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
    return *id;
  }
};

// Issue one batched write of chunks [0, n) carrying `data`, all pages
// dirty, and return the per-chunk outcomes.
std::vector<StoreClient::ChunkWrite> BatchWrite(
    StoreClient& c, sim::VirtualClock& clock, FileId id, uint32_t n,
    const std::vector<uint8_t>& data, std::vector<Bitmap>& dirty) {
  dirty.assign(n, Bitmap(kChunk / c.config().page_bytes));
  std::vector<StoreClient::ChunkWrite> writes(n);
  for (uint32_t i = 0; i < n; ++i) {
    dirty[i].SetAll();
    writes[i].index = i;
    writes[i].dirty = &dirty[i];
    writes[i].image = {data.data() + i * kChunk, kChunk};
  }
  EXPECT_TRUE(c.WriteChunks(clock, id, writes).ok());
  return writes;
}

// Read chunks [0, n) back through the batched read path and compare.
void ExpectReadsBack(StoreClient& c, FileId id, uint32_t n,
                     const std::vector<uint8_t>& data) {
  sim::VirtualClock clock(0);
  std::vector<std::vector<uint8_t>> bufs(n, std::vector<uint8_t>(kChunk));
  std::vector<StoreClient::ChunkFetch> fetches(n);
  for (uint32_t i = 0; i < n; ++i) {
    fetches[i].index = i;
    fetches[i].out = bufs[i];
  }
  ASSERT_TRUE(c.ReadChunks(clock, id, fetches).ok());
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(fetches[i].status.ok()) << "chunk " << i;
    EXPECT_EQ(0,
              std::memcmp(bufs[i].data(), data.data() + i * kChunk, kChunk))
        << "chunk " << i;
  }
}

TEST(BatchWriteTest, KChunkWindowIsOneBenefactorWriteRequest) {
  constexpr uint32_t kChunks = 8;
  Rig rig(/*benefactors=*/1, /*batch_write_rpc=*/true);
  const FileId id = rig.CreateFile("/one", kChunks);
  const auto data = Pattern(kChunks * kChunk, 7);

  Benefactor& b = rig.store->benefactor(0);
  const uint64_t requests_before = b.write_requests();
  const uint64_t runs_before = rig.client().write_run_rpcs();

  sim::VirtualClock clock(0);
  std::vector<Bitmap> dirty;
  auto writes = BatchWrite(rig.client(), clock, id, kChunks, data, dirty);
  for (const auto& w : writes) ASSERT_TRUE(w.status.ok());

  // The whole K-chunk window lives on one benefactor: exactly ONE write
  // request (one header + one queueing slot), not one per chunk.
  EXPECT_EQ(b.write_requests() - requests_before, 1u);
  EXPECT_EQ(rig.client().write_run_rpcs() - runs_before, 1u);
  ExpectReadsBack(rig.client(), id, kChunks, data);
}

TEST(BatchWriteTest, OneRunPerBenefactorAcrossStripes) {
  constexpr int kBenefactors = 4;
  constexpr uint32_t kChunks = 12;  // 3 chunks per benefactor, round-robin
  Rig rig(kBenefactors, /*batch_write_rpc=*/true);
  const FileId id = rig.CreateFile("/spread", kChunks);
  const auto data = Pattern(kChunks * kChunk, 13);

  std::vector<uint64_t> before(kBenefactors);
  for (int b = 0; b < kBenefactors; ++b) {
    before[static_cast<size_t>(b)] =
        rig.store->benefactor(static_cast<size_t>(b)).write_requests();
  }

  sim::VirtualClock clock(0);
  std::vector<Bitmap> dirty;
  auto writes = BatchWrite(rig.client(), clock, id, kChunks, data, dirty);
  for (const auto& w : writes) ASSERT_TRUE(w.status.ok());

  for (int b = 0; b < kBenefactors; ++b) {
    EXPECT_EQ(rig.store->benefactor(static_cast<size_t>(b)).write_requests() -
                  before[static_cast<size_t>(b)],
              1u)
        << "benefactor " << b;
  }
  EXPECT_EQ(rig.client().write_run_rpcs(),
            static_cast<uint64_t>(kBenefactors));
  ExpectReadsBack(rig.client(), id, kChunks, data);
}

TEST(BatchWriteTest, BatchedEqualsChunkAtATimeByteForByte) {
  constexpr uint32_t kChunks = 10;
  Rig batched(/*benefactors=*/3, /*batch_write_rpc=*/true);
  Rig legacy(/*benefactors=*/3, /*batch_write_rpc=*/false);
  const auto data = Pattern(kChunks * kChunk, 29);
  const FileId idb = batched.CreateFile("/bytes", kChunks);
  const FileId idl = legacy.CreateFile("/bytes", kChunks);

  sim::VirtualClock cb(0);
  sim::VirtualClock cl(0);
  std::vector<Bitmap> db;
  std::vector<Bitmap> dl;
  auto wb = BatchWrite(batched.client(), cb, idb, kChunks, data, db);
  auto wl = BatchWrite(legacy.client(), cl, idl, kChunks, data, dl);
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(wb[i].status.ok());
    ASSERT_TRUE(wl[i].status.ok());
  }
  ExpectReadsBack(batched.client(), idb, kChunks, data);
  ExpectReadsBack(legacy.client(), idl, kChunks, data);
  // Identical data-plane traffic: the run RPC changes timing, not volume.
  EXPECT_EQ(batched.client().bytes_flushed(), legacy.client().bytes_flushed());
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(batched.store->benefactor(b).data_bytes_in(),
              legacy.store->benefactor(b).data_bytes_in());
  }
}

TEST(BatchWriteTest, BatchOfOneMatchesLegacyVirtualTime) {
  // Arithmetic identity: with one chunk per run, the streamed write path
  // must charge exactly what the per-chunk path charges — same completion
  // times, same network bytes, same device busy time.
  for (const bool partial : {false, true}) {
    Rig batched(/*benefactors=*/2, /*batch_write_rpc=*/true);
    Rig legacy(/*benefactors=*/2, /*batch_write_rpc=*/false);
    const auto data = Pattern(kChunk, 31);
    const FileId idb = batched.CreateFile("/one", 1);
    const FileId idl = legacy.CreateFile("/one", 1);
    const size_t pages = kChunk / batched.client().config().page_bytes;
    Bitmap dirty(pages);
    if (partial) {
      dirty.Set(0);
      dirty.Set(pages / 2);
      dirty.Set(pages - 1);
    } else {
      dirty.SetAll();
    }

    sim::VirtualClock tb(0);
    sim::VirtualClock tl(0);
    std::vector<StoreClient::ChunkWrite> wb(1);
    std::vector<StoreClient::ChunkWrite> wl(1);
    wb[0].index = wl[0].index = 0;
    wb[0].dirty = wl[0].dirty = &dirty;
    wb[0].image = wl[0].image = {data.data(), kChunk};
    ASSERT_TRUE(batched.client().WriteChunks(tb, idb, wb).ok());
    ASSERT_TRUE(legacy.client().WriteChunks(tl, idl, wl).ok());
    ASSERT_TRUE(wb[0].status.ok());
    ASSERT_TRUE(wl[0].status.ok());

    EXPECT_EQ(wb[0].ready_at, wl[0].ready_at) << "partial=" << partial;
    EXPECT_EQ(tb.now(), tl.now()) << "partial=" << partial;
    EXPECT_EQ(batched.cluster->network().remote_bytes(),
              legacy.cluster->network().remote_bytes());
    EXPECT_EQ(batched.cluster->network().bytes_transferred(),
              legacy.cluster->network().bytes_transferred());
    EXPECT_EQ(batched.store->benefactor(0).ssd().channel().busy_ns(),
              legacy.store->benefactor(0).ssd().channel().busy_ns());
    EXPECT_EQ(batched.store->benefactor(0).write_requests(),
              legacy.store->benefactor(0).write_requests());
  }
}

TEST(BatchWriteTest, BatchOfOneCloneMatchesLegacyVirtualTime) {
  // Same identity through the copy-on-write path: the chunk is shared
  // with a second file (a checkpoint link), so the write must clone first.
  // The run path ships the clone instruction as a standalone control
  // message; a run of one must still cost exactly the legacy sequence.
  Rig batched(/*benefactors=*/2, /*batch_write_rpc=*/true);
  Rig legacy(/*benefactors=*/2, /*batch_write_rpc=*/false);
  const auto data = Pattern(kChunk, 33);
  const auto update = Pattern(kChunk, 34);

  auto setup = [&](Rig& rig) -> FileId {
    sim::VirtualClock clock(0);
    StoreClient& c = rig.client();
    auto id = c.Create(clock, "/live");
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(c.Fallocate(clock, *id, kChunk).ok());
    Bitmap all(kChunk / c.config().page_bytes);
    all.SetAll();
    EXPECT_TRUE(
        c.WriteChunkPages(clock, *id, 0, all, {data.data(), kChunk}).ok());
    auto ckpt = c.Create(clock, "/ckpt");
    EXPECT_TRUE(ckpt.ok());
    EXPECT_TRUE(c.LinkFileChunks(clock, *ckpt, *id).ok());
    return *id;
  };
  const FileId idb = setup(batched);
  const FileId idl = setup(legacy);

  Bitmap all(kChunk / batched.client().config().page_bytes);
  all.SetAll();
  sim::VirtualClock tb(0);
  sim::VirtualClock tl(0);
  std::vector<StoreClient::ChunkWrite> wb(1);
  std::vector<StoreClient::ChunkWrite> wl(1);
  wb[0].index = wl[0].index = 0;
  wb[0].dirty = wl[0].dirty = &all;
  wb[0].image = wl[0].image = {update.data(), kChunk};
  ASSERT_TRUE(batched.client().WriteChunks(tb, idb, wb).ok());
  ASSERT_TRUE(legacy.client().WriteChunks(tl, idl, wl).ok());
  ASSERT_TRUE(wb[0].status.ok());
  ASSERT_TRUE(wl[0].status.ok());

  EXPECT_EQ(wb[0].ready_at, wl[0].ready_at);
  EXPECT_EQ(tb.now(), tl.now());
  EXPECT_EQ(batched.cluster->network().remote_bytes(),
            legacy.cluster->network().remote_bytes());
  EXPECT_EQ(batched.cluster->network().bytes_transferred(),
            legacy.cluster->network().bytes_transferred());
  for (size_t b = 0; b < 2; ++b) {
    EXPECT_EQ(batched.store->benefactor(b).ssd().channel().busy_ns(),
              legacy.store->benefactor(b).ssd().channel().busy_ns());
  }
  // Both views unchanged: the live file carries the update, the
  // checkpoint still reads the original bytes.
  ExpectReadsBack(batched.client(), idb, 1, update);
  ExpectReadsBack(legacy.client(), idl, 1, update);
}

TEST(BatchWriteTest, RunAmortisesDeviceRequestLatency) {
  // A fast NIC makes the SSD the bottleneck, so the per-request latency
  // saved by the single queueing slot shows up in the end-to-end makespan.
  constexpr uint32_t kChunks = 8;
  constexpr double kFastNic = 100'000.0;
  Rig batched(/*benefactors=*/1, /*batch_write_rpc=*/true, /*replication=*/1,
              /*client_nodes=*/1, kFastNic);
  Rig legacy(/*benefactors=*/1, /*batch_write_rpc=*/false, /*replication=*/1,
             /*client_nodes=*/1, kFastNic);
  const auto data = Pattern(kChunks * kChunk, 37);
  const FileId idb = batched.CreateFile("/amortise", kChunks);
  const FileId idl = legacy.CreateFile("/amortise", kChunks);

  sim::VirtualClock tb(0);
  sim::VirtualClock tl(0);
  std::vector<Bitmap> db;
  std::vector<Bitmap> dl;
  auto wb = BatchWrite(batched.client(), tb, idb, kChunks, data, db);
  auto wl = BatchWrite(legacy.client(), tl, idl, kChunks, data, dl);
  int64_t done_b = 0;
  int64_t done_l = 0;
  for (uint32_t i = 0; i < kChunks; ++i) {
    ASSERT_TRUE(wb[i].status.ok());
    ASSERT_TRUE(wl[i].status.ok());
    done_b = std::max(done_b, wb[i].ready_at);
    done_l = std::max(done_l, wl[i].ready_at);
  }

  // One queueing slot per run: K chunks save exactly (K-1) per-request
  // write latencies of device busy time...
  const int64_t latency =
      batched.store->benefactor(0).ssd().profile().write_latency_ns;
  const int64_t busy_b = batched.store->benefactor(0).ssd().channel().busy_ns();
  const int64_t busy_l = legacy.store->benefactor(0).ssd().channel().busy_ns();
  EXPECT_EQ(busy_l - busy_b, (kChunks - 1) * latency);
  // ...and the single-benefactor window (SSD-bound under the fast NIC)
  // finishes at least that much earlier end to end.
  EXPECT_GE(done_l - done_b, (kChunks - 1) * latency);
}

TEST(BatchWriteTest, ReplicatedFlushJoinsAtMaxOfReplicaTimes) {
  // The serial-replica-charging fix: a replicated flush forks a clock per
  // replica and joins at the max, so under a fast NIC (devices dominate,
  // replicas program in parallel on distinct SSDs) replication 2 costs
  // about one replica's time — not the sum the old serial path charged.
  constexpr double kFastNic = 100'000.0;
  auto elapsed_with_replication = [&](int replication) -> int64_t {
    Rig rig(/*benefactors=*/4, /*batch_write_rpc=*/true, replication,
            /*client_nodes=*/1, kFastNic);
    const FileId id = rig.CreateFile("/join", 1);
    const auto data = Pattern(kChunk, 41);
    sim::VirtualClock clock(0);
    std::vector<Bitmap> dirty;
    auto writes = BatchWrite(rig.client(), clock, id, 1, data, dirty);
    EXPECT_TRUE(writes[0].status.ok());
    return clock.now();
  };
  const int64_t one = elapsed_with_replication(1);
  const int64_t two = elapsed_with_replication(2);
  EXPECT_GE(two, one);
  EXPECT_LT(two, one + one / 2) << "replicated flush must overlap replicas";
}

TEST(BatchWriteTest, DegradedWriteSucceedsOnSurvivingReplica) {
  // One of the two replica holders is dead at flush time: the write must
  // still succeed (degraded), report the death, keep the location cache
  // pointing at data a replica actually holds, and read back intact.
  constexpr uint32_t kChunks = 4;
  Rig rig(/*benefactors=*/4, /*batch_write_rpc=*/true, /*replication=*/2);
  StoreClient& c = rig.client();
  const FileId id = rig.CreateFile("/degraded", kChunks);
  const auto data = Pattern(kChunks * kChunk, 43);
  {
    sim::VirtualClock clock(0);
    std::vector<Bitmap> dirty;
    auto writes = BatchWrite(c, clock, id, kChunks, data, dirty);
    for (const auto& w : writes) ASSERT_TRUE(w.status.ok());
  }
  EXPECT_EQ(c.degraded_writes(), 0u);

  // Kill one replica holder of chunk 0, then rewrite everything.
  sim::VirtualClock lookup(0);
  auto locs = rig.store->manager().GetReadLocations(lookup, id, 0, kChunks);
  ASSERT_TRUE(locs.ok());
  const int victim = (*locs)[0].benefactors.front();
  rig.store->benefactor(static_cast<size_t>(victim)).Kill();

  const auto update = Pattern(kChunks * kChunk, 44);
  sim::VirtualClock clock(0);
  std::vector<Bitmap> dirty;
  auto writes = BatchWrite(c, clock, id, kChunks, update, dirty);
  for (uint32_t i = 0; i < kChunks; ++i) {
    EXPECT_TRUE(writes[i].status.ok()) << "chunk " << i;
  }
  EXPECT_GT(c.degraded_writes(), 0u);
  EXPECT_FALSE(rig.store->benefactor(static_cast<size_t>(victim)).alive());
  // Every chunk reads back the update from the surviving replicas.
  ExpectReadsBack(c, id, kChunks, update);
}

TEST(BatchWriteTest, ConcurrentBatchedWritersSeeTheirOwnBytes) {
  // A write storm over the streamed path: several client nodes batch-write
  // their own striped files concurrently.  Exercises StreamTransfer and
  // the write-run grouping under real threads (TSan coverage via the
  // concurrency label); every writer must read back exactly its bytes.
  constexpr int kWriters = 3;
  constexpr uint32_t kChunks = 12;
  Rig rig(/*benefactors=*/4, /*batch_write_rpc=*/true, /*replication=*/1,
          /*client_nodes=*/kWriters);
  std::vector<FileId> ids(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    sim::VirtualClock clock(0);
    StoreClient& c = rig.client(w);
    auto id = c.Create(clock, "/storm" + std::to_string(w));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(c.Fallocate(clock, *id, kChunks * kChunk).ok());
    ids[static_cast<size_t>(w)] = *id;
  }

  std::atomic<int> failures{0};
  auto placement = rig.cluster->BlockPlacement(1, kWriters);
  rig.cluster->RunProcesses(placement, [&](net::ProcessEnv& env) {
    StoreClient& c = rig.store->ClientForNode(env.node_id);
    const FileId id = ids[static_cast<size_t>(env.node_id)];
    const auto data =
        Pattern(kChunks * kChunk, 50 + static_cast<uint64_t>(env.node_id));
    std::vector<Bitmap> dirty(kChunks,
                              Bitmap(kChunk / c.config().page_bytes));
    std::vector<StoreClient::ChunkWrite> writes(kChunks);
    for (uint32_t i = 0; i < kChunks; ++i) {
      dirty[i].SetAll();
      writes[i].index = i;
      writes[i].dirty = &dirty[i];
      writes[i].image = {data.data() + i * kChunk, kChunk};
    }
    if (!c.WriteChunks(*env.clock, id, writes).ok()) {
      failures.fetch_add(1);
      return;
    }
    for (uint32_t i = 0; i < kChunks; ++i) {
      if (!writes[i].status.ok()) {
        failures.fetch_add(1);
        return;
      }
    }
    std::vector<std::vector<uint8_t>> bufs(kChunks,
                                           std::vector<uint8_t>(kChunk));
    std::vector<StoreClient::ChunkFetch> fetches(kChunks);
    for (uint32_t i = 0; i < kChunks; ++i) {
      fetches[i].index = i;
      fetches[i].out = bufs[i];
    }
    if (!c.ReadChunks(*env.clock, id, fetches).ok()) {
      failures.fetch_add(1);
      return;
    }
    for (uint32_t i = 0; i < kChunks; ++i) {
      if (!fetches[i].status.ok() ||
          std::memcmp(bufs[i].data(), data.data() + i * kChunk, kChunk) !=
              0) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace nvm::store

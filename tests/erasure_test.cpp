// Erasure-coded redundancy: GF(2^8)/RS known-answer vectors, the
// encode -> drop-any-m -> reconstruct byte-exactness guarantee, the
// client degraded-read failover, background fragment repair from verified
// survivors, corrupt-fragment quarantine (rot surfaces as a repair, never
// as wrong bytes), and the knob-off pin: a store with the erasure knobs
// present but the mode off stays byte- and virtual-time-identical to the
// replicated default.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <set>
#include <vector>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/erasure.hpp"
#include "store/store.hpp"

namespace nvm {
namespace {

using store::ErasureCodec;

constexpr uint64_t kChunk = 64_KiB;
constexpr int64_t kMs = 1'000'000;  // virtual ns per millisecond

// ---- GF(2^8) known answers ----

TEST(Gf256Test, KnownAnswerVectors) {
  // alpha^8 reduces through the primitive polynomial 0x11D: 0x80 * 2 = 0x1D.
  EXPECT_EQ(store::gf256::Mul(0x80, 0x02), 0x1D);
  // Hand-checked products (carry-less multiply mod 0x11D).
  EXPECT_EQ(store::gf256::Mul(0x02, 0x02), 0x04);
  EXPECT_EQ(store::gf256::Mul(0x53, 0xCA), 0x8F);
  EXPECT_EQ(store::gf256::Mul(0x0E, 0x0E), 0x54);  // squaring is carry-less
  // Identity and absorbing elements.
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(store::gf256::Mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(store::gf256::Mul(static_cast<uint8_t>(a), 0), 0);
  }
  // Exp/Log are inverse bijections and alpha^255 = 1.
  EXPECT_EQ(store::gf256::Exp(0), 1);
  EXPECT_EQ(store::gf256::Exp(255), 1);
  EXPECT_EQ(store::gf256::Log(2), 1u);
  for (unsigned a = 1; a < 256; ++a) {
    EXPECT_EQ(store::gf256::Exp(store::gf256::Log(static_cast<uint8_t>(a))),
              a);
  }
}

TEST(Gf256Test, MulDivInvIdentities) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const uint8_t a = static_cast<uint8_t>(rng.Next());
    const uint8_t b = static_cast<uint8_t>(rng.Next() | 1);  // non-zero
    EXPECT_EQ(store::gf256::Div(store::gf256::Mul(a, b), b), a);
    EXPECT_EQ(store::gf256::Mul(b, store::gf256::Inv(b)), 1);
    // Commutativity and distributivity over XOR (field addition).
    const uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(store::gf256::Mul(a, b), store::gf256::Mul(b, a));
    EXPECT_EQ(store::gf256::Mul(a, b ^ c),
              store::gf256::Mul(a, b) ^ store::gf256::Mul(a, c));
  }
}

// ---- RS codec ----

std::vector<uint8_t> Pattern(uint64_t n, uint64_t seed) {
  std::vector<uint8_t> v(n);
  Xoshiro256 rng(seed);
  for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
  return v;
}

TEST(ErasureCodecTest, ParityMatchesNaiveReference) {
  // Independent reference: parity row r is sum_c C[r][c] * data[c], with
  // the coefficients read back through ParityCoeff and the field ops used
  // one byte at a time.
  const uint32_t k = 4, m = 2;
  ErasureCodec codec(k, m);
  const auto chunk = Pattern(k * 64, 11);
  const auto frags = codec.Encode(chunk);
  ASSERT_EQ(frags.size(), k + m);
  for (uint32_t r = 0; r < m; ++r) {
    for (size_t byte = 0; byte < 64; ++byte) {
      uint8_t want = 0;
      for (uint32_t c = 0; c < k; ++c) {
        want = static_cast<uint8_t>(
            want ^ store::gf256::Mul(codec.ParityCoeff(r, c),
                                     chunk[c * 64 + byte]));
      }
      ASSERT_EQ(frags[k + r][byte], want) << "row " << r << " byte " << byte;
    }
  }
  // Systematic: data fragments are contiguous slices of the chunk.
  for (uint32_t c = 0; c < k; ++c) {
    EXPECT_EQ(0, std::memcmp(frags[c].data(), chunk.data() + c * 64, 64));
  }
}

TEST(ErasureCodecTest, AnyTwoLossesReconstructByteExact) {
  // RS(4,2): all C(6,2) = 15 double-loss patterns must reconstruct the
  // chunk byte-exactly (the MDS property of the Cauchy construction).
  const uint32_t k = 4, m = 2;
  ErasureCodec codec(k, m);
  const auto chunk = Pattern(k * 512, 12);
  const auto encoded = codec.Encode(chunk);
  std::vector<uint8_t> out(chunk.size());
  for (uint32_t a = 0; a < k + m; ++a) {
    for (uint32_t b = a + 1; b < k + m; ++b) {
      auto frags = encoded;
      frags[a].clear();
      frags[b].clear();
      ASSERT_TRUE(codec.Reconstruct(frags)) << a << "," << b;
      for (uint32_t f = 0; f < k + m; ++f) {
        ASSERT_EQ(frags[f], encoded[f]) << "loss " << a << "," << b
                                        << " fragment " << f;
      }
      ErasureCodec::Assemble(frags, k, out);
      ASSERT_EQ(0, std::memcmp(out.data(), chunk.data(), chunk.size()))
          << "loss " << a << "," << b;
    }
  }
  // m+1 losses are unrecoverable and must say so, not fabricate bytes.
  auto frags = encoded;
  frags[0].clear();
  frags[2].clear();
  frags[5].clear();
  EXPECT_FALSE(codec.Reconstruct(frags));
}

TEST(ErasureCodecTest, WideGeometryRoundTrips) {
  // A non-RAID shape exercises the general Cauchy solve.
  const uint32_t k = 10, m = 4;
  ErasureCodec codec(k, m);
  const auto chunk = Pattern(k * 128, 13);
  auto frags = codec.Encode(chunk);
  // Drop m scattered fragments, parity and data mixed.
  frags[1].clear();
  frags[7].clear();
  frags[10].clear();
  frags[13].clear();
  ASSERT_TRUE(codec.Reconstruct(frags));
  std::vector<uint8_t> out(chunk.size());
  ErasureCodec::Assemble(frags, k, out);
  EXPECT_EQ(0, std::memcmp(out.data(), chunk.data(), chunk.size()));
}

// ---- store rig ----

// RS(4,2) needs six distinct failure domains: one benefactor per node.
struct Rig {
  std::unique_ptr<net::Cluster> cluster;
  std::unique_ptr<store::AggregateStore> store;

  explicit Rig(int benefactors,
               std::function<void(store::StoreConfig&)> tweak = {}) {
    net::ClusterConfig cc;
    cc.num_nodes = benefactors + 1;
    cluster = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 1;
    sc.store.redundancy = store::RedundancyMode::kErasure;
    sc.store.ec_k = 4;
    sc.store.ec_m = 2;
    sc.store.maintenance = true;
    sc.store.heartbeat_period_ms = 1;
    sc.store.heartbeat_misses = 3;
    sc.store.scrub_period_ms = 20;
    if (tweak) tweak(sc.store);
    for (int b = 0; b < benefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store = std::make_unique<store::AggregateStore>(*cluster, sc);
    sim::CurrentClock().Reset();
  }

  store::MaintenanceService& ms() { return *store->maintenance(); }
};

store::FileId WriteStoreFile(store::StoreClient& c, const std::string& name,
                             uint32_t chunks, const std::vector<uint8_t>& data,
                             sim::VirtualClock& clock) {
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok());
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok());
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  for (uint32_t i = 0; i < chunks; ++i) {
    EXPECT_TRUE(
        c.WriteChunkPages(clock, *id, i, all,
                          {data.data() + i * kChunk, kChunk})
            .ok());
  }
  return *id;
}

void ExpectBytes(store::StoreClient& c, sim::VirtualClock& clock,
                 store::FileId id, uint32_t chunks,
                 const std::vector<uint8_t>& want) {
  std::vector<uint8_t> buf(kChunk);
  for (uint32_t i = 0; i < chunks; ++i) {
    ASSERT_TRUE(c.ReadChunk(clock, id, i, buf).ok()) << "chunk " << i;
    ASSERT_EQ(0, std::memcmp(buf.data(), want.data() + i * kChunk, kChunk))
        << "chunk " << i;
  }
}

// Every chunk carries a full positional fragment map: k+m entries, no
// holes, all distinct, all on alive benefactors.
void ExpectFullStripes(Rig& rig, store::FileId id, uint32_t chunks) {
  sim::VirtualClock clock(0);
  const auto& cfg = rig.store->manager().config();
  auto locs = rig.store->manager().GetReadLocations(clock, id, 0, chunks);
  ASSERT_TRUE(locs.ok());
  for (uint32_t i = 0; i < chunks; ++i) {
    const store::ReadLocation& loc = (*locs)[i];
    ASSERT_TRUE(loc.ec) << "chunk " << i;
    ASSERT_EQ(loc.benefactors.size(), cfg.ec_fragments()) << "chunk " << i;
    std::set<int> distinct;
    for (int b : loc.benefactors) {
      ASSERT_GE(b, 0) << "chunk " << i << " has a hole";
      EXPECT_TRUE(rig.store->benefactor(static_cast<size_t>(b)).alive())
          << "chunk " << i << " fragment on dead benefactor " << b;
      distinct.insert(b);
    }
    EXPECT_EQ(distinct.size(), loc.benefactors.size())
        << "chunk " << i << " co-locates fragments";
  }
}

// ---- degraded reads ----

TEST(ErasureStoreTest, WriteThenReadRoundTripsIntact) {
  Rig rig(6);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 8;
  const auto data = Pattern(kChunks * kChunk, 21);
  const store::FileId id = WriteStoreFile(c, "/ec", kChunks, data, clock);
  ExpectFullStripes(rig, id, kChunks);
  ExpectBytes(c, clock, id, kChunks, data);
  // The intact fast path never reconstructs.
  EXPECT_EQ(c.ec_degraded_reads(), 0u);
  EXPECT_EQ(rig.store->manager().ec_degraded_reads(), 0u);
  // Parity accounting: m/k of the data volume rode along as parity.
  EXPECT_EQ(rig.store->manager().ec_parity_bytes(),
            kChunks * kChunk * 2 / 4);
}

TEST(ErasureStoreTest, DegradedReadSurvivesAnyTwoFragmentLosses) {
  // Detector pushed out of the horizon: the reads themselves must fail
  // over, with no repair help.
  Rig rig(6, [](store::StoreConfig& cfg) {
    cfg.heartbeat_period_ms = 1'000'000;
    cfg.scrub_period_ms = 1'000'000;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 6;
  const auto data = Pattern(kChunks * kChunk, 22);
  const store::FileId id = WriteStoreFile(c, "/deg", kChunks, data, clock);

  // m = 2 losses: every stripe spans all six benefactors, so every chunk
  // loses exactly two fragments — the worst tolerable case.
  rig.store->benefactor(1).Kill();
  rig.store->benefactor(4).Kill();
  ExpectBytes(c, clock, id, kChunks, data);
  EXPECT_GT(c.ec_degraded_reads(), 0u);
  EXPECT_EQ(rig.store->manager().ec_degraded_reads(), c.ec_degraded_reads());
  EXPECT_EQ(rig.store->manager().lost_chunks(), 0u);
}

TEST(ErasureStoreTest, PartialDirtyWriteMergesOverDegradedStripe) {
  Rig rig(6, [](store::StoreConfig& cfg) {
    cfg.heartbeat_period_ms = 1'000'000;
    cfg.scrub_period_ms = 1'000'000;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 23);
  const store::FileId id = WriteStoreFile(c, "/rmw", 1, data, clock);

  // Kill one fragment holder, then flush a single dirty page: the
  // read-modify-write must reconstruct the old bytes, overlay the page,
  // and land a consistent new stripe on the survivors.
  rig.store->benefactor(2).Kill();
  auto want = data;
  std::fill(want.begin() + 4096, want.begin() + 8192, 0x5A);
  Bitmap one(kChunk / c.config().page_bytes);
  one.Set(1);
  ASSERT_TRUE(c.WriteChunkPages(clock, id, 0, one, want).ok());
  ExpectBytes(c, clock, id, 1, want);
  EXPECT_EQ(rig.store->manager().lost_chunks(), 0u);
}

// ---- fragment repair ----

TEST(ErasureStoreTest, FragmentRepairRestoresFullStripes) {
  Rig rig(7);
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 8;
  const auto data = Pattern(kChunks * kChunk, 24);
  const store::FileId id = WriteStoreFile(c, "/rep", kChunks, data, clock);

  // Kill a holder; the detector declares it and repair re-encodes every
  // missing fragment onto the spare failure domain.
  rig.ms().RunUntil(rig.ms().now_ns());
  rig.store->benefactor(3).Kill();
  rig.ms().RunUntil(rig.ms().now_ns() + 10 * kMs);
  EXPECT_TRUE(rig.ms().QueueEmpty());
  EXPECT_GT(rig.store->manager().ec_fragments_repaired(), 0u);
  EXPECT_EQ(rig.store->manager().lost_chunks(), 0u);
  ExpectFullStripes(rig, id, kChunks);

  // The repaired stripes must survive a FURTHER double loss byte-exactly:
  // repaired parity is real parity, not a placeholder.
  rig.store->benefactor(0).Kill();
  rig.store->benefactor(5).Kill();
  sim::VirtualClock rclock(clock.now());
  ExpectBytes(c, rclock, id, kChunks, data);
}

TEST(ErasureStoreTest, StripeBelowKIsLostNotFabricated) {
  Rig rig(6, [](store::StoreConfig& cfg) {
    cfg.heartbeat_period_ms = 1'000'000;
    cfg.scrub_period_ms = 1'000'000;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 25);
  const store::FileId id = WriteStoreFile(c, "/lost", 1, data, clock);

  // m+1 = 3 losses: below k survivors, the read must fail — never
  // fabricate bytes.
  rig.store->benefactor(0).Kill();
  rig.store->benefactor(2).Kill();
  rig.store->benefactor(4).Kill();
  std::vector<uint8_t> buf(kChunk);
  EXPECT_FALSE(c.ReadChunk(clock, id, 0, buf).ok());
}

// ---- corrupt fragments ----

TEST(ErasureStoreTest, CorruptFragmentQuarantinedNeverWrongBytes) {
  Rig rig(7, [](store::StoreConfig& cfg) {
    cfg.verify_reads = true;
    cfg.heartbeat_period_ms = 1'000'000;
    cfg.scrub_period_ms = 1'000'000;
  });
  store::StoreClient& c = rig.store->ClientForNode(0);
  sim::VirtualClock clock(0);
  const auto data = Pattern(kChunk, 26);
  const store::FileId id = WriteStoreFile(c, "/rot", 1, data, clock);

  // Flip a bit in a DATA fragment (position 0) behind everyone's back.
  auto loc = rig.store->manager().GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  const int bad = loc->benefactors[0];
  ASSERT_TRUE(rig.store->benefactor(static_cast<size_t>(bad))
                  .CorruptChunk(loc->key, 17, 0x40)
                  .ok());

  // The verifying read catches the rot, quarantines the fragment, and
  // reconstructs the true bytes from the survivors.
  std::vector<uint8_t> buf(kChunk);
  ASSERT_TRUE(c.ReadChunk(clock, id, 0, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), data.data(), kChunk));
  EXPECT_GT(c.corrupt_failovers(), 0u);
  EXPECT_GT(c.ec_degraded_reads(), 0u);
  EXPECT_GT(rig.store->manager().corrupt_detected(), 0u);

  // The quarantine queued a repair: draining it re-encodes the fragment
  // (onto a clean domain) and the stripe is whole again.
  rig.ms().RunUntil(rig.ms().now_ns() + 5 * kMs);
  EXPECT_TRUE(rig.ms().QueueEmpty());
  EXPECT_GT(rig.store->manager().ec_fragments_repaired(), 0u);
  ExpectFullStripes(rig, id, 1);
  ExpectBytes(c, clock, id, 1, data);
}

// ---- knob-off identity pin ----

// With the redundancy mode off, the erasure knobs must be completely
// dormant: a run with ec_k/ec_m/ec_encode_bw_gbps set (but
// redundancy=replicate) is byte- and virtual-time-identical to the
// default store.  This is the "EC off changes nothing" contract that
// keeps every pre-erasure benchmark table valid.
TEST(ErasureStoreTest, ModeOffIsByteAndTimeIdenticalToDefault) {
  struct RunResult {
    int64_t final_time = 0;
    uint64_t fetched = 0;
    uint64_t flushed = 0;
    uint64_t meta_rtts = 0;
    uint32_t crc = 0;
  };
  auto run = [](bool set_dormant_knobs) {
    net::ClusterConfig cc;
    cc.num_nodes = 5;
    net::Cluster cluster(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 2;
    sc.store.maintenance = true;
    if (set_dormant_knobs) {
      sc.store.redundancy = store::RedundancyMode::kReplicate;  // mode OFF
      sc.store.ec_k = 5;
      sc.store.ec_m = 3;
      sc.store.ec_encode_bw_gbps = 0.25;
    }
    for (int b = 0; b < 4; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store::AggregateStore st(cluster, sc);
    sim::CurrentClock().Reset();
    store::StoreClient& c = st.ClientForNode(0);
    sim::VirtualClock clock(0);
    constexpr uint32_t kChunks = 6;
    const auto data = Pattern(kChunks * kChunk, 42);
    const store::FileId id = WriteStoreFile(c, "/pin", kChunks, data, clock);
    // Mixed traffic: full overwrite of one chunk, partial of another,
    // reads of everything.
    Bitmap one(kChunk / c.config().page_bytes);
    one.Set(3);
    EXPECT_TRUE(
        c.WriteChunkPages(clock, id, 2, one, {data.data() + 2 * kChunk, kChunk})
            .ok());
    std::vector<uint8_t> buf(kChunk);
    uint32_t crc = 0;
    for (uint32_t i = 0; i < kChunks; ++i) {
      EXPECT_TRUE(c.ReadChunk(clock, id, i, buf).ok());
      crc = Crc32c(buf.data(), buf.size()) ^ (crc << 1);
    }
    RunResult r;
    r.final_time = clock.now();
    r.fetched = c.bytes_fetched();
    r.flushed = c.bytes_flushed();
    r.meta_rtts = c.meta_round_trips();
    r.crc = crc;
    return r;
  };
  const RunResult base = run(false);
  const RunResult dormant = run(true);
  EXPECT_EQ(base.final_time, dormant.final_time);
  EXPECT_EQ(base.fetched, dormant.fetched);
  EXPECT_EQ(base.flushed, dormant.flushed);
  EXPECT_EQ(base.meta_rtts, dormant.meta_rtts);
  EXPECT_EQ(base.crc, dormant.crc);
}

}  // namespace
}  // namespace nvm

// Unit tests for the fuselite layer: mount/file semantics, the chunk
// cache (hits, misses, LRU eviction, dirty-page write-back, read-ahead
// overlap), and traffic accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "fuselite/mount.hpp"
#include "sim/clock.hpp"

namespace nvm::fuselite {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr uint64_t kPage = 4_KiB;

class FuseliteTest : public ::testing::Test {
 protected:
  FuseliteTest() { Rebuild({}); }

  void Rebuild(FuseliteConfig config) {
    net::ClusterConfig cc;
    cc.num_nodes = 4;
    cluster_ = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.benefactor_nodes = {1, 2};
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store_ = std::make_unique<store::AggregateStore>(*cluster_, sc);
    mount_ = std::make_unique<MountPoint>(*store_, /*node=*/0, config);
    sim::CurrentClock().Reset();
  }

  std::vector<uint8_t> Pattern(uint64_t bytes, uint64_t seed) {
    std::vector<uint8_t> v(bytes);
    Xoshiro256 rng(seed);
    for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
    return v;
  }

  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<store::AggregateStore> store_;
  std::unique_ptr<MountPoint> mount_;
};

TEST_F(FuseliteTest, CreateOpenUnlink) {
  auto f = mount_->Create("/a", 1_MiB);
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->valid());
  auto info = f->Stat();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 1_MiB);

  auto g = mount_->Open("/a");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->id(), f->id());

  ASSERT_TRUE(mount_->Unlink("/a").ok());
  EXPECT_EQ(mount_->Open("/a").status().code(), ErrorCode::kNotFound);
}

TEST_F(FuseliteTest, OpenOrCreateBothPaths) {
  auto a = mount_->OpenOrCreate("/x");
  ASSERT_TRUE(a.ok());
  auto b = mount_->OpenOrCreate("/x");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->id(), b->id());
}

TEST_F(FuseliteTest, WriteReadRoundTripAcrossChunks) {
  auto f = mount_->Create("/rw");
  ASSERT_TRUE(f.ok());
  // 3.5 chunks, misaligned start.
  const auto data = Pattern(3 * kChunk + kChunk / 2, 17);
  ASSERT_TRUE(f->Write(1234, data).ok());
  std::vector<uint8_t> got(data.size());
  ASSERT_TRUE(f->Read(1234, got).ok());
  EXPECT_EQ(got, data);
}

TEST_F(FuseliteTest, WriteExtendsFileImplicitly) {
  auto f = mount_->Create("/extend");
  ASSERT_TRUE(f.ok());
  const auto data = Pattern(kPage, 3);
  ASSERT_TRUE(f->Write(5 * kChunk, data).ok());
  auto info = f->Stat();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->size, 5 * kChunk + kPage);
  // The hole reads as zeros.
  std::vector<uint8_t> hole(kPage, 0xEE);
  ASSERT_TRUE(f->Read(0, hole).ok());
  for (uint8_t b : hole) ASSERT_EQ(b, 0);
}

TEST_F(FuseliteTest, DataSurvivesCacheDropAndRemoteReopen) {
  auto f = mount_->Create("/durable");
  ASSERT_TRUE(f.ok());
  const auto data = Pattern(2 * kChunk, 5);
  ASSERT_TRUE(f->Write(0, data).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(mount_->cache().Drop(sim::CurrentClock(), f->id()).ok());

  // Read through a different node's mount: must come from the store.
  MountPoint other(*store_, /*node=*/3);
  auto g = other.Open("/durable");
  ASSERT_TRUE(g.ok());
  std::vector<uint8_t> got(data.size());
  ASSERT_TRUE(g->Read(0, got).ok());
  EXPECT_EQ(got, data);
}

TEST_F(FuseliteTest, RepeatedReadsHitCache) {
  auto f = mount_->Create("/hot", kChunk);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> buf(kPage);
  ASSERT_TRUE(f->Read(0, buf).ok());
  const auto& t = mount_->cache().traffic();
  const uint64_t fetched_before = t.fetched_chunks;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(f->Read((i % 16) * kPage, buf).ok());
  }
  EXPECT_EQ(t.fetched_chunks, fetched_before);  // all within chunk 0
  EXPECT_GE(t.hit_chunks, 50u);
}

TEST_F(FuseliteTest, LruEvictsUnderPressureAndFlushesDirtyPages) {
  FuseliteConfig cfg;
  cfg.cache_bytes = 4 * kChunk;  // tiny cache
  cfg.readahead = false;
  Rebuild(cfg);
  auto f = mount_->Create("/pressure", 16 * kChunk);
  ASSERT_TRUE(f.ok());

  // Dirty one page in each of 16 chunks: must evict 12+ and flush them.
  const auto page = Pattern(kPage, 7);
  for (int c = 0; c < 16; ++c) {
    ASSERT_TRUE(f->Write(static_cast<uint64_t>(c) * kChunk, page).ok());
  }
  const auto& t = mount_->cache().traffic();
  EXPECT_GE(t.evictions, 12u);
  EXPECT_EQ(mount_->cache().resident_chunks(), 4u);
  ASSERT_TRUE(f->Sync().ok());
  // Only dirty pages travelled: 16 pages, not 16 chunks.
  EXPECT_EQ(mount_->client().bytes_flushed(), 16 * kPage);

  // Everything still reads back correctly.
  std::vector<uint8_t> got(kPage);
  for (int c = 0; c < 16; ++c) {
    ASSERT_TRUE(f->Read(static_cast<uint64_t>(c) * kChunk, got).ok());
    EXPECT_EQ(got, page);
  }
}

TEST_F(FuseliteTest, WholeChunkWritebackWhenOptimizationOff) {
  FuseliteConfig cfg;
  cfg.dirty_page_writeback = false;
  Rebuild(cfg);
  auto f = mount_->Create("/wholechunk", kChunk);
  ASSERT_TRUE(f.ok());
  const auto page = Pattern(kPage, 9);
  ASSERT_TRUE(f->Write(0, page).ok());
  ASSERT_TRUE(f->Sync().ok());
  // One dirty page, but the whole chunk travels.
  EXPECT_EQ(mount_->client().bytes_flushed(), kChunk);
}

TEST_F(FuseliteTest, FullChunkOverwriteSkipsFetch) {
  auto f = mount_->Create("/overwrite", 2 * kChunk);
  ASSERT_TRUE(f.ok());
  const auto chunk_img = Pattern(kChunk, 11);
  ASSERT_TRUE(f->Write(0, chunk_img).ok());
  EXPECT_EQ(mount_->cache().traffic().fetched_chunks, 0u);
  // A partial write to a cold chunk must fetch (read-modify-write).
  const auto page = Pattern(kPage, 12);
  ASSERT_TRUE(f->Write(kChunk + 512, page).ok());
  EXPECT_EQ(mount_->cache().traffic().fetched_chunks, 1u);
}

TEST_F(FuseliteTest, SequentialReadTriggersReadahead) {
  auto f = mount_->Create("/seq", 8 * kChunk);
  ASSERT_TRUE(f.ok());
  // Materialise the file so prefetches really fetch data.
  const auto img = Pattern(8 * kChunk, 13);
  ASSERT_TRUE(f->Write(0, img).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(mount_->cache().Drop(sim::CurrentClock(), f->id()).ok());

  std::vector<uint8_t> buf(kPage);
  for (uint64_t off = 0; off + kPage <= 8 * kChunk; off += kPage) {
    ASSERT_TRUE(f->Read(off, buf).ok());
  }
  const auto& t = mount_->cache().traffic();
  EXPECT_GT(t.prefetched_chunks, 4u);
}

TEST_F(FuseliteTest, ReadaheadOverlapsWithConsumerCompute) {
  // Read-ahead hides chunk-fetch latency behind the consumer's compute:
  // a reader that does per-page work must finish markedly sooner with
  // read-ahead on.  (A pure I/O-bound reader gains almost nothing — there
  // is nothing to overlap with — which the paper's STREAM results echo.)
  auto time_full_read = [&](bool readahead) {
    FuseliteConfig cfg;
    cfg.readahead = readahead;
    Rebuild(cfg);
    auto f = mount_->Create("/ra", 32 * kChunk);
    NVM_CHECK(f.ok());
    const auto img = Pattern(32 * kChunk, 21);
    NVM_CHECK(f->Write(0, img).ok());
    NVM_CHECK(f->Sync().ok());
    NVM_CHECK(mount_->cache().Drop(sim::CurrentClock(), f->id()).ok());
    // Measure as a delta: resources keep their timelines, so the clock
    // must keep moving forward.
    const int64_t t0 = sim::CurrentClock().now();
    std::vector<uint8_t> buf(kPage);
    for (uint64_t off = 0; off + kPage <= 32 * kChunk; off += kPage) {
      NVM_CHECK(f->Read(off, buf).ok());
      sim::CurrentClock().Advance(20'000);  // 20 us of work per page
    }
    return sim::CurrentClock().now() - t0;
  };
  const int64_t with_ra = time_full_read(true);
  const int64_t without_ra = time_full_read(false);
  // Expect a large fraction of the fetch time to be hidden.
  EXPECT_LT(static_cast<double>(with_ra),
            0.8 * static_cast<double>(without_ra));
}

TEST_F(FuseliteTest, RandomReadsDoNotPrefetch) {
  auto f = mount_->Create("/rand", 8 * kChunk);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> buf(kPage);
  Xoshiro256 rng(31);
  for (int i = 0; i < 64; ++i) {
    const uint64_t off = (rng.NextBelow(8 * kChunk / kPage)) * kPage;
    ASSERT_TRUE(f->Read(off, buf).ok());
  }
  EXPECT_EQ(mount_->cache().traffic().prefetched_chunks, 0u);
}

TEST_F(FuseliteTest, TrafficCountersTrackAppBytes) {
  auto f = mount_->Create("/count", kChunk);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> buf(100);
  ASSERT_TRUE(f->Write(0, buf).ok());
  ASSERT_TRUE(f->Read(0, buf).ok());
  const auto& t = mount_->cache().traffic();
  EXPECT_EQ(t.app_bytes_written, 100u);
  EXPECT_EQ(t.app_bytes_read, 100u);
  mount_->cache().ResetTraffic();
  EXPECT_EQ(mount_->cache().traffic().app_bytes_written, 0u);
}

TEST_F(FuseliteTest, DropDiscardsCleanStateButFlushesDirty) {
  auto f = mount_->Create("/drop", kChunk);
  ASSERT_TRUE(f.ok());
  const auto page = Pattern(kPage, 15);
  ASSERT_TRUE(f->Write(0, page).ok());
  ASSERT_TRUE(mount_->cache().Drop(sim::CurrentClock(), f->id()).ok());
  EXPECT_EQ(mount_->cache().resident_chunks(), 0u);
  // The dirty page reached the store before the drop.
  std::vector<uint8_t> got(kPage);
  ASSERT_TRUE(f->Read(0, got).ok());
  EXPECT_EQ(got, page);
}

TEST_F(FuseliteTest, SharedMountCoalescesAccessAcrossFiles) {
  // Two handles to the same file share cached chunks (the shared-mmap
  // mechanism): the second reader must not refetch.
  auto f = mount_->Create("/shared", kChunk);
  ASSERT_TRUE(f.ok());
  const auto img = Pattern(kChunk, 23);
  ASSERT_TRUE(f->Write(0, img).ok());
  auto g = mount_->Open("/shared");
  ASSERT_TRUE(g.ok());
  const uint64_t fetched = mount_->cache().traffic().fetched_chunks;
  std::vector<uint8_t> got(kChunk);
  ASSERT_TRUE(g->Read(0, got).ok());
  EXPECT_EQ(mount_->cache().traffic().fetched_chunks, fetched);
  EXPECT_EQ(got, img);
}

}  // namespace
}  // namespace nvm::fuselite

// Tests for the minimpi layer: pt2pt ordering and tagging, collectives
// against serial references, virtual-time semantics of transfers, and the
// BLOCK distribution helper.
#include <gtest/gtest.h>

#include <numeric>

#include "minimpi/comm.hpp"

namespace nvm::minimpi {
namespace {

net::ClusterConfig SmallCluster(size_t nodes) {
  net::ClusterConfig cc;
  cc.num_nodes = nodes;
  return cc;
}

// Run `body` as `nprocs` ranks spread over `nodes` nodes.
void RunRanks(size_t nprocs, size_t nodes,
              const std::function<void(net::ProcessEnv&, RankHandle&)>& body) {
  net::Cluster cluster(SmallCluster(nodes));
  std::vector<int> placement;
  for (size_t r = 0; r < nprocs; ++r) {
    placement.push_back(static_cast<int>(r % nodes));
  }
  Comm comm(cluster, placement);
  cluster.RunProcesses(placement, [&](net::ProcessEnv& env) {
    auto mpi = comm.rank_handle(env.rank);
    body(env, mpi);
  });
}

TEST(BlockRangeTest, CoversAllElementsOnce) {
  const uint64_t n = 1003;
  const int P = 17;
  uint64_t covered = 0;
  uint64_t last_end = 0;
  for (int r = 0; r < P; ++r) {
    auto [b, e] = Comm::BlockRange(n, P, r);
    EXPECT_EQ(b, last_end);
    last_end = e;
    covered += e - b;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(last_end, n);
}

TEST(BlockRangeTest, BalancedWithinOne) {
  auto [b0, e0] = Comm::BlockRange(100, 8, 0);
  auto [b7, e7] = Comm::BlockRange(100, 8, 7);
  EXPECT_LE((e0 - b0) - (e7 - b7), 1u);
}

TEST(MiniMpiTest, SendRecvRoundTrip) {
  RunRanks(2, 2, [](net::ProcessEnv& env, RankHandle& mpi) {
    if (env.rank == 0) {
      const uint64_t v = 0xDEADBEEF;
      mpi.SendVal(1, v);
      EXPECT_EQ(mpi.RecvVal<uint64_t>(1), v + 1);
    } else {
      const auto v = mpi.RecvVal<uint64_t>(0);
      mpi.SendVal(0, v + 1);
    }
  });
}

TEST(MiniMpiTest, MessagesOrderedPerPair) {
  RunRanks(2, 2, [](net::ProcessEnv& env, RankHandle& mpi) {
    if (env.rank == 0) {
      for (int i = 0; i < 50; ++i) mpi.SendVal(1, i);
    } else {
      for (int i = 0; i < 50; ++i) EXPECT_EQ(mpi.RecvVal<int>(0), i);
    }
  });
}

TEST(MiniMpiTest, TagsKeepStreamsApart) {
  RunRanks(2, 1, [](net::ProcessEnv& env, RankHandle& mpi) {
    if (env.rank == 0) {
      mpi.SendVal(1, 111, /*tag=*/7);
      mpi.SendVal(1, 222, /*tag=*/8);
    } else {
      // Receive in the opposite order of sending: tags must demultiplex.
      EXPECT_EQ(mpi.RecvVal<int>(0, /*tag=*/8), 222);
      EXPECT_EQ(mpi.RecvVal<int>(0, /*tag=*/7), 111);
    }
  });
}

TEST(MiniMpiTest, RecvWaitsForArrivalTime) {
  RunRanks(2, 2, [](net::ProcessEnv& env, RankHandle& mpi) {
    if (env.rank == 0) {
      std::vector<uint8_t> big(1'000'000);
      mpi.Send(1, big);
    } else {
      std::vector<uint8_t> buf(1'000'000);
      mpi.Recv(0, buf);
      // 1 MB over a ~230 MB/s NIC: at least ~4 ms of virtual time.
      EXPECT_GT(env.clock->now(), 3'000'000);
    }
  });
}

TEST(MiniMpiTest, SameNodeTransferIsFast) {
  RunRanks(2, 1, [](net::ProcessEnv& env, RankHandle& mpi) {
    if (env.rank == 0) {
      std::vector<uint8_t> big(1'000'000);
      mpi.Send(1, big);
    } else {
      std::vector<uint8_t> buf(1'000'000);
      mpi.Recv(0, buf);
      // Loopback at ~3 GB/s: well under a millisecond.
      EXPECT_LT(env.clock->now(), 1'000'000);
    }
  });
}

TEST(MiniMpiTest, BarrierSynchronises) {
  RunRanks(8, 4, [](net::ProcessEnv& env, RankHandle& mpi) {
    env.clock->Advance(env.rank * 1000);
    mpi.Barrier();
    EXPECT_GE(env.clock->now(), 7000);
  });
}

class BcastTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BcastTest, AllRanksReceiveFromEveryRoot) {
  const auto [nprocs, root] = GetParam();
  if (root >= nprocs) GTEST_SKIP();
  RunRanks(static_cast<size_t>(nprocs), 3,
           [root = root](net::ProcessEnv& env, RankHandle& mpi) {
             std::vector<uint64_t> data(1000);
             if (env.rank == root) {
               std::iota(data.begin(), data.end(), 42);
             }
             mpi.Bcast({reinterpret_cast<uint8_t*>(data.data()),
                        data.size() * 8},
                       root);
             for (size_t i = 0; i < data.size(); ++i) {
               ASSERT_EQ(data[i], 42 + i);
             }
           });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BcastTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16),
                       ::testing::Values(0, 1, 4)));

TEST(MiniMpiTest, ScatterGatherInverse) {
  constexpr int kP = 6;
  RunRanks(kP, 3, [](net::ProcessEnv& env, RankHandle& mpi) {
    std::vector<int32_t> all(kP * 10);
    std::vector<int32_t> mine(10);
    if (env.rank == 0) std::iota(all.begin(), all.end(), 0);
    mpi.Scatter({reinterpret_cast<const uint8_t*>(all.data()),
                 all.size() * 4},
                {reinterpret_cast<uint8_t*>(mine.data()), mine.size() * 4},
                0);
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(mine[static_cast<size_t>(i)], env.rank * 10 + i);
    }
    // Transform and gather back.
    for (auto& v : mine) v *= 2;
    std::vector<int32_t> gathered(kP * 10);
    mpi.Gather({reinterpret_cast<const uint8_t*>(mine.data()),
                mine.size() * 4},
               {reinterpret_cast<uint8_t*>(gathered.data()),
                gathered.size() * 4},
               0);
    if (env.rank == 0) {
      for (size_t i = 0; i < gathered.size(); ++i) {
        ASSERT_EQ(gathered[i], static_cast<int32_t>(i) * 2);
      }
    }
  });
}

TEST(MiniMpiTest, AllgatherEveryoneSeesAll) {
  constexpr int kP = 5;
  RunRanks(kP, 2, [](net::ProcessEnv& env, RankHandle& mpi) {
    const uint64_t mine = static_cast<uint64_t>(env.rank) * 100;
    std::vector<uint64_t> all(kP);
    mpi.Allgather({reinterpret_cast<const uint8_t*>(&mine), 8},
                  {reinterpret_cast<uint8_t*>(all.data()), all.size() * 8});
    for (int r = 0; r < kP; ++r) {
      ASSERT_EQ(all[static_cast<size_t>(r)],
                static_cast<uint64_t>(r) * 100);
    }
  });
}

TEST(MiniMpiTest, AllreduceSumAndMax) {
  constexpr int kP = 7;
  RunRanks(kP, 3, [](net::ProcessEnv& env, RankHandle& mpi) {
    const int64_t sum = mpi.AllreduceSum<int64_t>(env.rank + 1);
    EXPECT_EQ(sum, kP * (kP + 1) / 2);
    int64_t v = env.rank * 3;
    std::span<int64_t> s(&v, 1);
    mpi.Allreduce(s, [](int64_t a, int64_t b) { return std::max(a, b); });
    EXPECT_EQ(v, (kP - 1) * 3);
  });
}

TEST(MiniMpiTest, AlltoallvExchangesVariableBlocks) {
  constexpr int kP = 5;
  RunRanks(kP, 3, [](net::ProcessEnv& env, RankHandle& mpi) {
    // Rank r sends (r + dst + 1) bytes of value (r*16+dst) to each dst.
    std::vector<uint8_t> send;
    std::vector<uint64_t> counts(kP);
    for (int dst = 0; dst < kP; ++dst) {
      const uint64_t c = static_cast<uint64_t>(env.rank + dst + 1);
      counts[static_cast<size_t>(dst)] = c;
      send.insert(send.end(), c, static_cast<uint8_t>(env.rank * 16 + dst));
    }
    std::vector<uint8_t> recv;
    std::vector<uint64_t> rcounts;
    mpi.Alltoallv(send, counts, &recv, &rcounts);

    size_t at = 0;
    for (int src = 0; src < kP; ++src) {
      const uint64_t expect_count =
          static_cast<uint64_t>(src + env.rank + 1);
      ASSERT_EQ(rcounts[static_cast<size_t>(src)], expect_count);
      for (uint64_t i = 0; i < expect_count; ++i) {
        ASSERT_EQ(recv[at + i],
                  static_cast<uint8_t>(src * 16 + env.rank));
      }
      at += expect_count;
    }
    ASSERT_EQ(at, recv.size());
  });
}

TEST(MiniMpiTest, AlltoallvWithEmptyBlocks) {
  constexpr int kP = 4;
  RunRanks(kP, 2, [](net::ProcessEnv& env, RankHandle& mpi) {
    // Only even ranks send anything, and only to odd ranks.
    std::vector<uint8_t> send;
    std::vector<uint64_t> counts(kP, 0);
    if (env.rank % 2 == 0) {
      for (int dst = 1; dst < kP; dst += 2) {
        counts[static_cast<size_t>(dst)] = 3;
        send.insert(send.end(), 3, static_cast<uint8_t>(env.rank + 1));
      }
    }
    std::vector<uint8_t> recv;
    std::vector<uint64_t> rcounts;
    mpi.Alltoallv(send, counts, &recv, &rcounts);
    uint64_t total = 0;
    for (uint64_t c : rcounts) total += c;
    ASSERT_EQ(total, recv.size());
    if (env.rank % 2 == 1) {
      ASSERT_EQ(total, 6u);  // from ranks 0 and 2
    } else {
      ASSERT_EQ(total, 0u);
    }
  });
}

TEST(MiniMpiTest, BinomialBcastBeatsLinearForLargeComm) {
  // Time a 1 MB bcast to 16 ranks on 8 nodes; the binomial tree should
  // finish in ~log2(8) inter-node rounds, far less than 15 serial sends.
  net::Cluster cluster(SmallCluster(8));
  std::vector<int> placement;
  for (int r = 0; r < 16; ++r) placement.push_back(r % 8);
  Comm comm(cluster, placement);
  const int64_t makespan =
      cluster.RunProcesses(placement, [&](net::ProcessEnv& env) {
        auto mpi = comm.rank_handle(env.rank);
        std::vector<uint8_t> data(1'000'000, 7);
        mpi.Bcast(data, 0);
      });
  // One 1 MB hop is ~4.4 ms; a linear bcast would need 14 remote hops
  // through the root's NIC (~60 ms).  The tree should stay under ~7 hops.
  EXPECT_LT(makespan, 35'000'000);
}

}  // namespace
}  // namespace nvm::minimpi

// Tests for the NVMalloc core: ssdmalloc/ssdfree, region paging (faults,
// eviction under the page pool, dirty write-back), shared mappings,
// checkpoint/restart with chunk linking and COW, and typed arrays.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nvmalloc/runtime.hpp"
#include "sim/clock.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr uint64_t kPage = NvmRegion::kPageBytes;

class NvmallocTest : public ::testing::Test {
 protected:
  NvmallocTest() { Rebuild({}); }

  void Rebuild(NvmallocConfig config) {
    net::ClusterConfig cc;
    cc.num_nodes = 4;
    cluster_ = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.benefactor_nodes = {1, 2, 3};
    sc.contribution_bytes = 256_MiB;
    sc.manager_node = 1;
    store_ = std::make_unique<store::AggregateStore>(*cluster_, sc);
    runtime_ = std::make_unique<NvmallocRuntime>(*store_, /*node=*/0, config);
    sim::CurrentClock().Reset();
  }

  std::vector<uint8_t> Pattern(uint64_t bytes, uint64_t seed) {
    std::vector<uint8_t> v(bytes);
    Xoshiro256 rng(seed);
    for (auto& b : v) b = static_cast<uint8_t>(rng.Next());
    return v;
  }

  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<store::AggregateStore> store_;
  std::unique_ptr<NvmallocRuntime> runtime_;
};

TEST_F(NvmallocTest, SsdMallocAndFree) {
  auto r = runtime_->SsdMalloc(1_MiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->size_bytes(), 1_MiB);
  EXPECT_EQ(runtime_->live_regions(), 1u);
  EXPECT_TRUE(runtime_->SsdFree(*r).ok());
  EXPECT_EQ(runtime_->live_regions(), 0u);
  EXPECT_EQ(runtime_->SsdFree(nullptr).code(), ErrorCode::kInvalidArgument);
}

TEST_F(NvmallocTest, ZeroByteMallocRejected) {
  EXPECT_EQ(runtime_->SsdMalloc(0).status().code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(NvmallocTest, FreshRegionReadsZero) {
  auto r = runtime_->SsdMalloc(256_KiB);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> buf(10000, 0xFF);
  ASSERT_TRUE((*r)->Read(12345, buf).ok());
  for (uint8_t b : buf) ASSERT_EQ(b, 0);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, WriteReadRoundTrip) {
  auto r = runtime_->SsdMalloc(1_MiB);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(300'000, 3);
  ASSERT_TRUE((*r)->Write(777, data).ok());
  std::vector<uint8_t> got(data.size());
  ASSERT_TRUE((*r)->Read(777, got).ok());
  EXPECT_EQ(got, data);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, OutOfRangeAccessRejected) {
  auto r = runtime_->SsdMalloc(64_KiB);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> buf(16);
  EXPECT_EQ((*r)->Read(64_KiB - 8, buf).code(), ErrorCode::kOutOfRange);
  EXPECT_TRUE((*r)->Read(64_KiB - 16, buf).ok());
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, PageFaultsAreCountedAndCharged) {
  auto r = runtime_->SsdMalloc(16 * kPage);
  ASSERT_TRUE(r.ok());
  const int64_t t0 = sim::CurrentClock().now();
  std::vector<uint8_t> buf(kPage);
  ASSERT_TRUE((*r)->Read(0, buf).ok());
  EXPECT_EQ((*r)->stats().page_faults, 1u);
  EXPECT_GT(sim::CurrentClock().now(), t0);
  // Re-reading a resident page faults nothing.
  ASSERT_TRUE((*r)->Read(0, buf).ok());
  EXPECT_EQ((*r)->stats().page_faults, 1u);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, ResidentAccessIsMuchCheaperThanFault) {
  auto r = runtime_->SsdMalloc(kChunk);
  ASSERT_TRUE(r.ok());
  std::vector<uint8_t> buf(kPage);
  ASSERT_TRUE((*r)->Read(0, buf).ok());
  const int64_t after_fault = sim::CurrentClock().now();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*r)->Read(0, buf).ok());
  }
  // 100 resident accesses cost nothing on the virtual clock (DRAM charges
  // are the workload's business, see stream.cpp).
  EXPECT_EQ(sim::CurrentClock().now(), after_fault);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, PagePoolEvictsFifoAndWritesBackDirty) {
  NvmallocConfig cfg;
  cfg.page_pool_bytes = 8 * kPage;  // tiny pool
  Rebuild(cfg);
  auto r = runtime_->SsdMalloc(32 * kPage);
  ASSERT_TRUE(r.ok());

  // Dirty every page: pool pressure must evict and write back.
  const auto page_data = Pattern(kPage, 9);
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE((*r)->Write(p * kPage, page_data).ok());
  }
  EXPECT_LE(runtime_->pool().resident_pages(), 8u);
  EXPECT_GE(runtime_->pool().evictions(), 24u);
  EXPECT_GE((*r)->stats().bytes_written_back, 24 * kPage);

  // All data still correct (evicted pages re-fault from the cache/store).
  std::vector<uint8_t> got(kPage);
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE((*r)->Read(p * kPage, got).ok());
    EXPECT_EQ(got, page_data);
  }
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, PoolSharedAcrossRegions) {
  NvmallocConfig cfg;
  cfg.page_pool_bytes = 8 * kPage;
  Rebuild(cfg);
  auto a = runtime_->SsdMalloc(8 * kPage);
  auto b = runtime_->SsdMalloc(8 * kPage);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<uint8_t> buf(kPage);
  for (uint64_t p = 0; p < 8; ++p) {
    ASSERT_TRUE((*a)->Read(p * kPage, buf).ok());
    ASSERT_TRUE((*b)->Read(p * kPage, buf).ok());
  }
  EXPECT_LE(runtime_->pool().resident_pages(), 8u);
  EXPECT_GT(runtime_->pool().evictions(), 0u);
  ASSERT_TRUE(runtime_->SsdFree(*a).ok());
  ASSERT_TRUE(runtime_->SsdFree(*b).ok());
}

TEST_F(NvmallocTest, SyncMakesDataDurableAcrossNodes) {
  auto r = runtime_->SsdMalloc(2 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(2 * kChunk, 17);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());
  // The same backing file read through another node sees the bytes.
  NvmallocRuntime other(*store_, /*node=*/3);
  auto info = runtime_->mount().client().Stat(sim::CurrentClock(),
                                              (*r)->file_id());
  ASSERT_TRUE(info.ok());
  auto f = other.mount().Open(info->name);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> got(data.size());
  ASSERT_TRUE(f->Read(0, got).ok());
  EXPECT_EQ(got, data);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, SharedMappingReturnsSameRegion) {
  SsdMallocOptions opts{.shared = true, .shared_name = "b_matrix"};
  auto a = runtime_->SsdMalloc(1_MiB, opts);
  auto b = runtime_->SsdMalloc(1_MiB, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(runtime_->live_regions(), 1u);

  // Size conflict is rejected.
  EXPECT_FALSE(runtime_->SsdMalloc(2_MiB, opts).ok());

  // Refcounted free: the first free keeps it alive.
  ASSERT_TRUE(runtime_->SsdFree(*a).ok());
  EXPECT_EQ(runtime_->live_regions(), 1u);
  ASSERT_TRUE(runtime_->SsdFree(*b).ok());
  EXPECT_EQ(runtime_->live_regions(), 0u);
}

TEST_F(NvmallocTest, SharedMappingSharesFaults) {
  // A second "process" touching the same shared region must not refetch.
  SsdMallocOptions opts{.shared = true, .shared_name = "warm"};
  auto a = runtime_->SsdMalloc(kChunk, opts);
  ASSERT_TRUE(a.ok());
  std::vector<uint8_t> buf(kChunk);
  ASSERT_TRUE((*a)->Read(0, buf).ok());
  const uint64_t faults = (*a)->stats().page_faults;
  auto b = runtime_->SsdMalloc(kChunk, opts);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*b)->Read(0, buf).ok());
  EXPECT_EQ((*b)->stats().page_faults, faults);  // same region, no refault
  ASSERT_TRUE(runtime_->SsdFree(*a).ok());
  ASSERT_TRUE(runtime_->SsdFree(*b).ok());
}

TEST_F(NvmallocTest, SsdFreeDiscardsBackingFile) {
  auto r = runtime_->SsdMalloc(kChunk);
  ASSERT_TRUE(r.ok());
  auto info = runtime_->mount().client().Stat(sim::CurrentClock(),
                                              (*r)->file_id());
  ASSERT_TRUE(info.ok());
  const std::string name = info->name;
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
  EXPECT_EQ(runtime_->mount().Open(name).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(NvmallocTest, NvmArrayTypedAccess) {
  auto r = runtime_->SsdMalloc(1000 * sizeof(double));
  ASSERT_TRUE(r.ok());
  NvmArray<double> arr(*r);
  EXPECT_EQ(arr.size(), 1000u);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(arr.Set(i, static_cast<double>(i) * 1.5).ok());
  }
  for (size_t i = 0; i < 1000; ++i) {
    auto v = arr.Get(i);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, static_cast<double>(i) * 1.5);
  }
  auto span = arr.PinRead(100, 50);
  ASSERT_TRUE(span.ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*span)[i], static_cast<double>(100 + i) * 1.5);
  }
  span->Release();
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

// ---- checkpoint / restart ----

TEST_F(NvmallocTest, CheckpointAndRestartRoundTrip) {
  auto r = runtime_->SsdMalloc(3 * kChunk + 100);
  ASSERT_TRUE(r.ok());
  const auto nvm_data = Pattern(3 * kChunk + 100, 5);
  ASSERT_TRUE((*r)->Write(0, nvm_data).ok());
  std::vector<uint8_t> dram = Pattern(10'000, 6);

  CheckpointSpec spec;
  spec.dram.push_back({dram.data(), dram.size()});
  spec.nvm.push_back(*r);
  auto info = runtime_->SsdCheckpoint(spec, "/ckpt/rt");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->dram_bytes_copied, 10'000u);
  EXPECT_EQ(info->nvm_bytes_linked, 3 * kChunk + 100);
  EXPECT_EQ(info->nvm_bytes_copied, 0u);
  EXPECT_GT(info->duration_ns, 0);

  // Restore into fresh storage.
  std::vector<uint8_t> dram2(10'000, 0);
  auto r2 = runtime_->SsdMalloc(3 * kChunk + 100);
  ASSERT_TRUE(r2.ok());
  RestoreSpec restore;
  restore.dram.push_back({dram2.data(), dram2.size()});
  restore.nvm.push_back(*r2);
  ASSERT_TRUE(runtime_->SsdRestart("/ckpt/rt", restore).ok());
  EXPECT_EQ(dram2, dram);
  std::vector<uint8_t> got(nvm_data.size());
  ASSERT_TRUE((*r2)->Read(0, got).ok());
  EXPECT_EQ(got, nvm_data);

  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
  ASSERT_TRUE(runtime_->SsdFree(*r2).ok());
}

TEST_F(NvmallocTest, CheckpointSurvivesSubsequentWrites) {
  auto r = runtime_->SsdMalloc(2 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto v1 = Pattern(2 * kChunk, 1);
  ASSERT_TRUE((*r)->Write(0, v1).ok());
  CheckpointSpec spec;
  spec.nvm.push_back(*r);
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/cow").ok());

  // Mutate the live variable heavily.
  const auto v2 = Pattern(2 * kChunk, 2);
  ASSERT_TRUE((*r)->Write(0, v2).ok());
  ASSERT_TRUE((*r)->Sync().ok());

  // Restore must see v1, not v2.
  auto r2 = runtime_->SsdMalloc(2 * kChunk);
  ASSERT_TRUE(r2.ok());
  RestoreSpec restore;
  restore.nvm.push_back(*r2);
  ASSERT_TRUE(runtime_->SsdRestart("/ckpt/cow", restore).ok());
  std::vector<uint8_t> got(2 * kChunk);
  ASSERT_TRUE((*r2)->Read(0, got).ok());
  EXPECT_EQ(got, v1);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
  ASSERT_TRUE(runtime_->SsdFree(*r2).ok());
}

TEST_F(NvmallocTest, LinkedCheckpointAvoidsCopyingNvmData) {
  auto r = runtime_->SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto data = Pattern(8 * kChunk, 3);
  ASSERT_TRUE((*r)->Write(0, data).ok());
  ASSERT_TRUE((*r)->Sync().ok());

  const uint64_t ssd_before = cluster_->TotalSsdBytesWritten();
  CheckpointSpec spec;
  spec.nvm.push_back(*r);
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/linked").ok());
  const uint64_t linked_cost = cluster_->TotalSsdBytesWritten() - ssd_before;

  // The naive copy baseline writes the full variable again.
  spec.link_nvm = false;
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/copied").ok());
  const uint64_t copied_cost =
      cluster_->TotalSsdBytesWritten() - ssd_before - linked_cost;

  // Linking writes only the header chunk; the baseline rewrites all data.
  EXPECT_LE(linked_cost, 2 * kChunk);
  EXPECT_GE(copied_cost, 8 * kChunk);
  EXPECT_GT(copied_cost, 3 * linked_cost);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, IncrementalCheckpointWritesOnlyCowChunks) {
  auto r = runtime_->SsdMalloc(8 * kChunk);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE((*r)->Write(0, Pattern(8 * kChunk, 4)).ok());
  CheckpointSpec spec;
  spec.nvm.push_back(*r);
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/t0").ok());

  // Touch one chunk between checkpoints.
  ASSERT_TRUE((*r)->Write(2 * kChunk, Pattern(kChunk, 44)).ok());
  const uint64_t before = cluster_->TotalSsdBytesWritten();
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/t1").ok());
  const uint64_t incremental = cluster_->TotalSsdBytesWritten() - before;
  // Header chunk + one COW clone + one chunk of dirty pages — not the
  // whole 8-chunk variable.
  EXPECT_LE(incremental, 4 * kChunk);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, RestartValidatesShape) {
  std::vector<uint8_t> dram(100);
  CheckpointSpec spec;
  spec.dram.push_back({dram.data(), dram.size()});
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/shape").ok());

  RestoreSpec wrong_count;
  EXPECT_EQ(runtime_->SsdRestart("/ckpt/shape", wrong_count).code(),
            ErrorCode::kInvalidArgument);

  std::vector<uint8_t> small(50);
  RestoreSpec wrong_size;
  wrong_size.dram.push_back({small.data(), small.size()});
  EXPECT_EQ(runtime_->SsdRestart("/ckpt/shape", wrong_size).code(),
            ErrorCode::kInvalidArgument);

  RestoreSpec missing;
  std::vector<uint8_t> buf(100);
  missing.dram.push_back({buf.data(), buf.size()});
  EXPECT_EQ(runtime_->SsdRestart("/ckpt/nothere", missing).code(),
            ErrorCode::kNotFound);
}

TEST_F(NvmallocTest, RestartRejectsNonCheckpointFile) {
  auto f = runtime_->mount().Create("/notackpt", kChunk);
  ASSERT_TRUE(f.ok());
  std::vector<uint8_t> junk(kChunk, 0x77);
  ASSERT_TRUE(f->Write(0, junk).ok());
  RestoreSpec spec;
  EXPECT_EQ(runtime_->SsdRestart("/notackpt", spec).code(),
            ErrorCode::kIoError);
}

TEST_F(NvmallocTest, MultiVariableCheckpointLayout) {
  auto r1 = runtime_->SsdMalloc(kChunk + 10);
  auto r2 = runtime_->SsdMalloc(2 * kChunk);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  const auto d1 = Pattern(kChunk + 10, 8);
  const auto d2 = Pattern(2 * kChunk, 9);
  ASSERT_TRUE((*r1)->Write(0, d1).ok());
  ASSERT_TRUE((*r2)->Write(0, d2).ok());
  std::vector<uint8_t> dram_a = Pattern(123, 10);
  std::vector<uint8_t> dram_b = Pattern(70'000, 11);

  CheckpointSpec spec;
  spec.dram.push_back({dram_a.data(), dram_a.size()});
  spec.dram.push_back({dram_b.data(), dram_b.size()});
  spec.nvm.push_back(*r1);
  spec.nvm.push_back(*r2);
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/multi").ok());

  std::vector<uint8_t> ra(123), rb(70'000);
  auto n1 = runtime_->SsdMalloc(kChunk + 10);
  auto n2 = runtime_->SsdMalloc(2 * kChunk);
  RestoreSpec restore;
  restore.dram.push_back({ra.data(), ra.size()});
  restore.dram.push_back({rb.data(), rb.size()});
  restore.nvm.push_back(*n1);
  restore.nvm.push_back(*n2);
  ASSERT_TRUE(runtime_->SsdRestart("/ckpt/multi", restore).ok());
  EXPECT_EQ(ra, dram_a);
  EXPECT_EQ(rb, dram_b);
  std::vector<uint8_t> g1(d1.size()), g2(d2.size());
  ASSERT_TRUE((*n1)->Read(0, g1).ok());
  ASSERT_TRUE((*n2)->Read(0, g2).ok());
  EXPECT_EQ(g1, d1);
  EXPECT_EQ(g2, d2);
  for (auto* r : {*r1, *r2, *n1, *n2}) {
    ASSERT_TRUE(runtime_->SsdFree(r).ok());
  }
}

TEST_F(NvmallocTest, DrainCheckpointShipsExactBytes) {
  auto r = runtime_->SsdMalloc(3 * kChunk);
  ASSERT_TRUE(r.ok());
  const auto nvm_data = Pattern(3 * kChunk, 21);
  ASSERT_TRUE((*r)->Write(0, nvm_data).ok());
  std::vector<uint8_t> dram = Pattern(5000, 22);
  CheckpointSpec spec;
  spec.dram.push_back({dram.data(), dram.size()});
  spec.nvm.push_back(*r);
  ASSERT_TRUE(runtime_->SsdCheckpoint(spec, "/ckpt/drainme").ok());

  // Drain into a host buffer and compare against a direct read of the
  // restart file.
  auto info = runtime_->mount().Open("/ckpt/drainme");
  ASSERT_TRUE(info.ok());
  auto stat = info->Stat();
  ASSERT_TRUE(stat.ok());
  std::vector<uint8_t> direct(stat->size);
  ASSERT_TRUE(info->Read(0, direct).ok());

  std::vector<uint8_t> drained(stat->size, 0);
  const int64_t app_before = sim::CurrentClock().now();
  auto result = runtime_->DrainCheckpoint(
      "/ckpt/drainme",
      [&](sim::VirtualClock& bg, uint64_t offset,
          std::span<const uint8_t> data) {
        bg.Advance(1000);  // the external target costs something
        std::copy(data.begin(), data.end(), drained.begin() + offset);
        return OkStatus();
      });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bytes, stat->size);
  EXPECT_EQ(drained, direct);
  // The drain charged only the background clock.
  EXPECT_EQ(sim::CurrentClock().now(), app_before);
  EXPECT_GT(result->background_ns, app_before);

  // Release frees the checkpoint; the live variable is untouched.
  ASSERT_TRUE(runtime_->ReleaseCheckpoint("/ckpt/drainme").ok());
  EXPECT_EQ(runtime_->mount().Open("/ckpt/drainme").status().code(),
            ErrorCode::kNotFound);
  std::vector<uint8_t> still(3 * kChunk);
  ASSERT_TRUE((*r)->Read(0, still).ok());
  EXPECT_EQ(still, nvm_data);
  ASSERT_TRUE(runtime_->SsdFree(*r).ok());
}

TEST_F(NvmallocTest, DrainMissingCheckpointFails) {
  auto result = runtime_->DrainCheckpoint(
      "/ckpt/ghost", [](sim::VirtualClock&, uint64_t,
                        std::span<const uint8_t>) { return OkStatus(); });
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
}

}  // namespace
}  // namespace nvm

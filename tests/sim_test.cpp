// Unit tests for the virtual-time substrate: clocks, resources (interval
// scheduling, contention, backfilling), device models (Table I profiles,
// wear accounting), and the clock-syncing barrier.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/units.hpp"
#include "sim/clock.hpp"
#include "sim/device.hpp"
#include "sim/resource.hpp"
#include "sim/sync.hpp"
#include "sim/worker.hpp"

namespace nvm::sim {
namespace {

TEST(VirtualClockTest, AdvanceAndAdvanceTo) {
  VirtualClock c;
  EXPECT_EQ(c.now(), 0);
  c.Advance(100);
  EXPECT_EQ(c.now(), 100);
  c.Advance(-5);  // negative advances are ignored
  EXPECT_EQ(c.now(), 100);
  c.AdvanceTo(50);  // never moves backwards
  EXPECT_EQ(c.now(), 100);
  c.AdvanceTo(250);
  EXPECT_EQ(c.now(), 250);
  c.Reset();
  EXPECT_EQ(c.now(), 0);
}

TEST(ContextTest, DefaultContextExists) {
  auto& ctx = CurrentContext();
  EXPECT_EQ(ctx.name, "main");
  CurrentClock().Advance(10);
  EXPECT_GE(CurrentClock().now(), 10);
  CurrentClock().Reset();
}

TEST(ContextTest, InstalledContextWins) {
  ExecutionContext mine;
  mine.name = "test";
  mine.clock.Advance(777);
  SetCurrentContext(&mine);
  EXPECT_EQ(CurrentContext().name, "test");
  EXPECT_EQ(CurrentClock().now(), 777);
  SetCurrentContext(nullptr);
  EXPECT_EQ(CurrentContext().name, "main");
}

TEST(ResourceTest, UncontendedRequestStartsImmediately) {
  Resource r("dev");
  EXPECT_EQ(r.Schedule(100, 50), 100);
  EXPECT_EQ(r.busy_ns(), 50);
  EXPECT_EQ(r.num_requests(), 1u);
  EXPECT_EQ(r.queue_delay_ns(), 0);
}

TEST(ResourceTest, BackToBackRequestsQueue) {
  Resource r("dev");
  EXPECT_EQ(r.Schedule(0, 100), 0);
  // Arrives while the first is in service: waits.
  EXPECT_EQ(r.Schedule(50, 100), 100);
  EXPECT_EQ(r.queue_delay_ns(), 50);
}

TEST(ResourceTest, BackfillsEarlierGaps) {
  Resource r("dev");
  // Occupy [1000, 1100).
  EXPECT_EQ(r.Schedule(1000, 100), 1000);
  // A logically earlier request fits entirely before it.
  EXPECT_EQ(r.Schedule(0, 500), 0);
  // A request too big for the [500,1000) gap goes after.
  EXPECT_EQ(r.Schedule(500, 600), 1100);
  // A request that fits the remaining gap takes it.
  EXPECT_EQ(r.Schedule(500, 400), 500);
}

TEST(ResourceTest, ZeroDurationIsFree) {
  Resource r("dev");
  EXPECT_EQ(r.Schedule(42, 0), 42);
  EXPECT_EQ(r.busy_ns(), 0);
}

TEST(ResourceTest, AcquireAdvancesClock) {
  Resource r("dev");
  VirtualClock c;
  EXPECT_EQ(r.Acquire(c, 100), 0);  // no queueing
  EXPECT_EQ(c.now(), 100);
  VirtualClock c2;  // contends with the first interval
  EXPECT_EQ(r.Acquire(c2, 100), 100);
  EXPECT_EQ(c2.now(), 200);
}

TEST(ResourceTest, TotalServiceConservedUnderThreads) {
  // However real threads interleave, total busy time must equal the sum
  // of service requests, and intervals must never overlap (i.e. the last
  // completion is at least the total service time).
  Resource r("dev");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  constexpr int64_t kService = 1000;
  std::vector<std::thread> threads;
  std::vector<int64_t> finals(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      VirtualClock c;
      for (int i = 0; i < kOpsPerThread; ++i) r.Acquire(c, kService);
      finals[static_cast<size_t>(t)] = c.now();
    });
  }
  for (auto& th : threads) th.join();
  const int64_t total = kThreads * kOpsPerThread * kService;
  EXPECT_EQ(r.busy_ns(), total);
  int64_t max_final = 0;
  for (int64_t f : finals) max_final = std::max(max_final, f);
  EXPECT_GE(max_final, total);  // serialised service
}

TEST(ResourceTest, ResetClearsEverything) {
  Resource r("dev");
  r.Schedule(0, 100);
  r.Reset();
  EXPECT_EQ(r.busy_ns(), 0);
  EXPECT_EQ(r.num_requests(), 0u);
  EXPECT_EQ(r.Schedule(0, 100), 0);  // timeline empty again
}

TEST(DeviceProfileTest, TableIValues) {
  EXPECT_EQ(IntelX25E().read_bw_mbps, 250.0);
  EXPECT_EQ(IntelX25E().write_bw_mbps, 170.0);
  EXPECT_EQ(IntelX25E().read_latency_ns, 75'000);
  EXPECT_EQ(IntelX25E().capacity_bytes, 32_GiB);
  EXPECT_EQ(FusionIoDriveDuo().read_bw_mbps, 1500.0);
  EXPECT_EQ(FusionIoDriveDuo().capacity_bytes, 640_GiB);
  EXPECT_EQ(OczRevoDrive().read_bw_mbps, 540.0);
  EXPECT_EQ(Ddr3_1600().read_bw_mbps, 12800.0);
  EXPECT_EQ(TableIDevices().size(), 4u);
}

TEST(DeviceProfileTest, TransferNs) {
  // 1 MB at 1000 MB/s = 1 ms, plus latency.
  EXPECT_EQ(TransferNs(1'000'000, 1000.0, 5000), 1'005'000);
  EXPECT_EQ(TransferNs(0, 1000.0, 5000), 5000);
}

TEST(SsdDeviceTest, ReadChargesBandwidthAndLatency) {
  SsdDevice ssd("ssd", IntelX25E());
  VirtualClock c;
  ssd.ChargeRead(c, 0, 250'000'000);  // 250 MB at 250 MB/s = 1 s
  EXPECT_NEAR(static_cast<double>(c.now()), 1e9 + 75'000, 1e5);
  EXPECT_EQ(ssd.host_bytes_read(), 250'000'000u);
}

TEST(SsdDeviceTest, SubPageWriteAmplifies) {
  SsdDevice ssd("ssd", IntelX25E());
  VirtualClock c;
  ssd.ChargeWrite(c, 100, 1);  // 1 byte -> 1 page programmed
  EXPECT_EQ(ssd.host_bytes_written(), 1u);
  EXPECT_EQ(ssd.device_bytes_programmed(), SsdDevice::kPageBytes);
  EXPECT_EQ(ssd.write_amplification(), 4096.0);
}

TEST(SsdDeviceTest, StraddlingWriteTouchesBothPages) {
  SsdDevice ssd("ssd", IntelX25E());
  VirtualClock c;
  ssd.ChargeWrite(c, SsdDevice::kPageBytes - 1, 2);  // straddles 2 pages
  EXPECT_EQ(ssd.device_bytes_programmed(), 2 * SsdDevice::kPageBytes);
}

TEST(SsdDeviceTest, WearAccumulatesPerBlock) {
  SsdDevice ssd("ssd", IntelX25E());
  VirtualClock c;
  // Program one erase block's worth of pages at the same block.
  const uint64_t pages_per_block =
      SsdDevice::kEraseBlockBytes / SsdDevice::kPageBytes;
  for (uint64_t p = 0; p < pages_per_block; ++p) {
    ssd.ChargeWrite(c, p * SsdDevice::kPageBytes, SsdDevice::kPageBytes);
  }
  EXPECT_EQ(ssd.max_block_erases(), 1u);
  EXPECT_GT(ssd.wear_fraction(), 0.0);
  ssd.ResetStats();
  EXPECT_EQ(ssd.max_block_erases(), 0u);
  EXPECT_EQ(ssd.host_bytes_written(), 0u);
}

TEST(DramDeviceTest, ChargesFullBandwidth) {
  DramDevice dram("dram", Ddr3_1600());
  VirtualClock c;
  dram.ChargeRead(c, 12'800'000);  // 12.8 MB at 12.8 GB/s = 1 ms
  EXPECT_NEAR(static_cast<double>(c.now()), 1e6, 1e3);
}

TEST(CpuModelTest, FlopsToTime) {
  CpuModel cpu(2.4, 4.0);  // 9.6 Gflop/s
  VirtualClock c;
  cpu.ChargeFlops(c, 9'600'000'000ULL);
  EXPECT_NEAR(static_cast<double>(c.now()), 1e9, 1e6);
}

TEST(VirtualBarrierTest, SynchronisesClocksToMax) {
  constexpr size_t kParties = 4;
  VirtualBarrier barrier(kParties, /*barrier_cost_ns=*/100);
  std::vector<std::thread> threads;
  std::vector<int64_t> after(kParties);
  for (size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&, t] {
      VirtualClock c;
      c.Advance(static_cast<int64_t>(t) * 1000);  // ranks at 0,1000,2000,3000
      barrier.Arrive(c);
      after[t] = c.now();
    });
  }
  for (auto& th : threads) th.join();
  for (int64_t v : after) EXPECT_EQ(v, 3100);
}

TEST(VirtualBarrierTest, Reusable) {
  VirtualBarrier barrier(2, 0);
  for (int round = 0; round < 3; ++round) {
    std::vector<int64_t> after(2);
    std::thread t1([&] {
      VirtualClock c(10 * (round + 1));
      barrier.Arrive(c);
      after[0] = c.now();
    });
    std::thread t2([&] {
      VirtualClock c(20 * (round + 1));
      barrier.Arrive(c);
      after[1] = c.now();
    });
    t1.join();
    t2.join();
    EXPECT_EQ(after[0], 20 * (round + 1));
    EXPECT_EQ(after[1], 20 * (round + 1));
  }
}

TEST(VirtualWorkerTest, RunsTasksInPostOrderOnOneClock) {
  VirtualWorker w("svc");
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    w.Post([&order, i](VirtualClock& c) {
      c.Advance(10);
      order.push_back(i);
    });
  }
  w.Drain();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  // All eight tasks charged the same worker clock.
  EXPECT_EQ(w.now_ns(), 80);
}

TEST(VirtualWorkerTest, DrainObservesSelfRepostingChains) {
  // A task that re-posts while still running extends the chain before the
  // queue ever goes empty, so one Drain() sees the whole cascade.
  VirtualWorker w("svc");
  std::function<void(VirtualClock&)> step = [&](VirtualClock& c) {
    c.Advance(5);
    if (c.now() < 50) w.Post(step);
  };
  w.Post(step);
  w.Drain();
  EXPECT_EQ(w.now_ns(), 50);
}

TEST(VirtualWorkerTest, NowIsReadableFromOtherThreadsMidStream) {
  VirtualWorker w("svc");
  for (int i = 0; i < 4; ++i) {
    w.Post([](VirtualClock& c) { c.Advance(100); });
  }
  // now_ns() is a monotonic snapshot — never ahead of completed work.
  const int64_t seen = w.now_ns();
  EXPECT_GE(seen, 0);
  EXPECT_LE(seen, 400);
  w.Drain();
  EXPECT_EQ(w.now_ns(), 400);
}

TEST(VirtualWorkerTest, DestructorRunsPendingTasks) {
  int ran = 0;
  {
    VirtualWorker w("svc");
    for (int i = 0; i < 16; ++i) {
      w.Post([&ran](VirtualClock& c) {
        c.Advance(1);
        ++ran;
      });
    }
  }  // dtor joins after the queue empties
  EXPECT_EQ(ran, 16);
}

}  // namespace
}  // namespace nvm::sim

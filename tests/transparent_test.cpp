// Tests for the SIGSEGV-paged TransparentMap: genuine pointer access to
// NVM-backed memory, read/write fault handling, residency eviction,
// write-back, multi-threaded faulting, and coexistence of several maps.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "common/rng.hpp"
#include "nvmalloc/transparent.hpp"
#include "sim/clock.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr uint64_t kPage = NvmRegion::kPageBytes;

// Opaque load: forces the access to really happen (and fault) before any
// surrounding non-volatile reads are scheduled.
__attribute__((noinline)) uint8_t ForceRead(const uint8_t* p) {
  asm volatile("" ::: "memory");
  uint8_t v = *p;
  asm volatile("" ::: "memory");
  return v;
}

class TransparentTest : public ::testing::Test {
 protected:
  TransparentTest() {
    net::ClusterConfig cc;
    cc.num_nodes = 3;
    cluster_ = std::make_unique<net::Cluster>(cc);
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.benefactor_nodes = {1, 2};
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    store_ = std::make_unique<store::AggregateStore>(*cluster_, sc);
    runtime_ = std::make_unique<NvmallocRuntime>(*store_, 0);
    sim::CurrentClock().Reset();
  }

  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<store::AggregateStore> store_;
  std::unique_ptr<NvmallocRuntime> runtime_;
};

TEST_F(TransparentTest, PlainPointerReadsAndWrites) {
  auto map = TransparentMap::Create(*runtime_, 64 * kPage);
  ASSERT_TRUE(map.ok());
  double* v = (*map)->as<double>();
  const size_t n = 64 * kPage / sizeof(double);

  // This is the paper's usage model: nvmvar[i] = x on a plain pointer.
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<double>(i) * 0.5;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(v[i], static_cast<double>(i) * 0.5);
  }
  EXPECT_GT((*map)->faults(), 0u);
}

TEST_F(TransparentTest, FreshMappingReadsZero) {
  auto map = TransparentMap::Create(*runtime_, 8 * kPage);
  ASSERT_TRUE(map.ok());
  const auto* bytes = static_cast<const uint8_t*>((*map)->data());
  for (uint64_t i = 0; i < 8 * kPage; i += 97) {
    ASSERT_EQ(bytes[i], 0);
  }
}

TEST_F(TransparentTest, ReadFaultThenWriteFaultUpgrades) {
  auto map = TransparentMap::Create(*runtime_, 4 * kPage);
  ASSERT_TRUE(map.ok());
  auto* bytes = static_cast<uint8_t*>((*map)->data());
  // Read first (page becomes PROT_READ), then write (upgrade fault).
  EXPECT_EQ(ForceRead(bytes), 0);
  const uint64_t faults_after_read = (*map)->faults();
  EXPECT_EQ(faults_after_read, 1u);
  bytes[0] = 0x55;
  EXPECT_EQ(bytes[0], 0x55);
  // The upgrade did not need a fresh load.
  EXPECT_EQ((*map)->faults(), faults_after_read);
}

TEST_F(TransparentTest, EvictionWritesBackAndRefaultsCorrectly) {
  TransparentMap::Options opts;
  opts.max_resident_pages = 4;
  auto map = TransparentMap::Create(*runtime_, 32 * kPage, opts);
  ASSERT_TRUE(map.ok());
  auto* bytes = static_cast<uint8_t*>((*map)->data());

  for (uint64_t p = 0; p < 32; ++p) {
    bytes[p * kPage + 13] = static_cast<uint8_t>(p + 1);
  }
  EXPECT_GE((*map)->evictions(), 28u);
  EXPECT_LE((*map)->resident_pages(), 4u);

  // Every page re-faults with its written value intact.
  for (uint64_t p = 0; p < 32; ++p) {
    ASSERT_EQ(bytes[p * kPage + 13], static_cast<uint8_t>(p + 1));
  }
}

TEST_F(TransparentTest, SyncPersistsToStore) {
  auto map = TransparentMap::Create(*runtime_, 2 * kChunk);
  ASSERT_TRUE(map.ok());
  auto* bytes = static_cast<uint8_t*>((*map)->data());
  Xoshiro256 rng(3);
  std::vector<uint8_t> expect(2 * kChunk);
  for (auto& b : expect) b = static_cast<uint8_t>(rng.Next());
  std::memcpy(bytes, expect.data(), expect.size());
  ASSERT_TRUE((*map)->Sync().ok());

  // Verify through the region API (independent read path).
  // The mapping's backing region is internal; read the store through a
  // fresh region restored from a checkpoint-free route: reread via mmap.
  for (uint64_t i = 0; i < expect.size(); i += 31) {
    ASSERT_EQ(bytes[i], expect[i]);
  }
}

TEST_F(TransparentTest, VirtualTimeChargedOnFaults) {
  auto map = TransparentMap::Create(*runtime_, 16 * kPage);
  ASSERT_TRUE(map.ok());
  const int64_t t0 = sim::CurrentClock().now();
  auto* bytes = static_cast<uint8_t*>((*map)->data());
  EXPECT_EQ(ForceRead(bytes), 0);
  EXPECT_GT(sim::CurrentClock().now(), t0);
}

TEST_F(TransparentTest, MultipleMapsCoexist) {
  auto a = TransparentMap::Create(*runtime_, 8 * kPage);
  auto b = TransparentMap::Create(*runtime_, 8 * kPage);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto* pa = static_cast<uint8_t*>((*a)->data());
  auto* pb = static_cast<uint8_t*>((*b)->data());
  for (uint64_t i = 0; i < 8 * kPage; i += 509) {
    pa[i] = 1;
    pb[i] = 2;
  }
  for (uint64_t i = 0; i < 8 * kPage; i += 509) {
    ASSERT_EQ(pa[i], 1);
    ASSERT_EQ(pb[i], 2);
  }
}

TEST_F(TransparentTest, MapDestructionUnregistersRange) {
  void* stale = nullptr;
  {
    auto map = TransparentMap::Create(*runtime_, 4 * kPage);
    ASSERT_TRUE(map.ok());
    stale = (*map)->data();
    static_cast<uint8_t*>(stale)[0] = 1;
  }
  // The range is gone; touching it would be a genuine crash (we only
  // check that a new mapping works fine afterwards).
  auto map2 = TransparentMap::Create(*runtime_, 4 * kPage);
  ASSERT_TRUE(map2.ok());
  static_cast<uint8_t*>((*map2)->data())[0] = 9;
  EXPECT_EQ(static_cast<uint8_t*>((*map2)->data())[0], 9);
}

TEST_F(TransparentTest, ConcurrentFaultingThreads) {
  auto map = TransparentMap::Create(*runtime_, 64 * kPage);
  ASSERT_TRUE(map.ok());
  auto* words = (*map)->as<uint64_t>();
  const size_t n = 64 * kPage / 8;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Disjoint slices, concurrent faults on shared pages at the seams.
      for (size_t i = static_cast<size_t>(t); i < n; i += kThreads) {
        words[i] = i;
      }
    });
  }
  for (auto& th : threads) th.join();
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(words[i], i);
}

TEST_F(TransparentTest, StridedColumnAccessStillCorrect) {
  // The pathological access pattern from the paper's column-major MM.
  TransparentMap::Options opts;
  opts.max_resident_pages = 8;
  auto map = TransparentMap::Create(*runtime_, 64 * kPage, opts);
  ASSERT_TRUE(map.ok());
  auto* bytes = static_cast<uint8_t*>((*map)->data());
  // Column order: stride kPage, wrapping.
  for (uint64_t col = 0; col < 16; ++col) {
    for (uint64_t row = 0; row < 64; ++row) {
      bytes[row * kPage + col] = static_cast<uint8_t>(row ^ col);
    }
  }
  for (uint64_t col = 0; col < 16; ++col) {
    for (uint64_t row = 0; row < 64; ++row) {
      ASSERT_EQ(bytes[row * kPage + col], static_cast<uint8_t>(row ^ col));
    }
  }
  EXPECT_GT((*map)->evictions(), 64u);  // heavy thrash, data still right
}

}  // namespace
}  // namespace nvm

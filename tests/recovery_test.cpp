// Crash-consistency suite for the manager metadata WAL + checkpoint +
// cold-start recovery path (store/wal.cpp, store/recovery.cpp).
//
// Three layers of coverage:
//  * WAL unit tests: record round-trips, torn tails, corrupt-record
//    rejection, segment rotation, checkpoint-supersedes-log, torn
//    checkpoints falling back to the previous slot, and the seeded
//    CrashAfterAppends schedule being deterministic.
//  * A crash-point matrix: the store is crashed at every named point
//    (mid completion batch, mid repair commit, mid checkpoint, mid
//    scrub, mid quarantine publish, mid COW prepare) and must recover —
//    via KillManager/RestartManager — to a store that passes the full
//    cross-layer invariant sweep and serves only old-or-new bytes,
//    never wrong ones.
//  * A seeded randomized kill schedule: ops run until the WAL freezes
//    at a random append, the manager is killed and restarted, the one
//    in-flight op is probed (old state, new state, or lost — nothing
//    else is acceptable), and every other file must come back exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/checksum.hpp"
#include "common/rng.hpp"
#include "sim/clock.hpp"
#include "store/erasure.hpp"
#include "store/store.hpp"
#include "store/wal.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;
constexpr int kBenefactors = 4;

using store::CrashPoint;
using store::WalRecord;
using store::WalRecordType;
using store::WalStore;

store::StoreConfig WalConfig() {
  store::StoreConfig cfg;
  cfg.wal = true;
  cfg.wal_segment_bytes = 4_KiB;
  return cfg;
}

store::ChunkKey Key(uint64_t file, uint32_t index, uint32_t version) {
  store::ChunkKey k;
  k.origin_file = file;
  k.index = index;
  k.version = version;
  return k;
}

// ---------------------------------------------------------------------------
// WAL unit tests
// ---------------------------------------------------------------------------

TEST(WalUnit, EveryRecordTypeRoundTrips) {
  WalStore wal(WalConfig());
  sim::VirtualClock clock(0);

  WalRecord create;
  create.type = WalRecordType::kCreateFile;
  create.file_id = 7;
  create.name = "/round/trip";

  WalRecord extend;
  extend.type = WalRecordType::kExtend;
  extend.file_id = 7;
  extend.size = 2 * kChunk;
  extend.placements = {{0, Key(7, 0, 0), {0, 1}}, {1, Key(7, 1, 0), {2, 3}}};

  WalRecord cow;
  cow.type = WalRecordType::kCowSwap;
  cow.file_id = 7;
  cow.slot = 1;
  cow.old_key = Key(7, 1, 0);
  cow.key = Key(7, 1, 1);
  cow.replicas = {2, 3};

  WalRecord complete;
  complete.type = WalRecordType::kComplete;
  complete.completions = {{Key(7, 0, 0), true, 0xdeadbeef,
                           {0xa1u, 0xb2u, 0xc3u}},  // erasure per-fragment crcs
                          {Key(7, 1, 1), false, 0, {}}};

  WalRecord replicas;
  replicas.type = WalRecordType::kReplicas;
  replicas.key = Key(7, 0, 0);
  replicas.replicas = {1};

  WalRecord lost;
  lost.type = WalRecordType::kReplicas;
  lost.key = Key(7, 1, 1);
  lost.replicas = {};

  WalRecord unlink;
  unlink.type = WalRecordType::kUnlink;
  unlink.file_id = 7;

  WalRecord link;
  link.type = WalRecordType::kLink;
  link.file_id = 9;
  link.src_file = 7;

  WalRecord redundancy;
  redundancy.type = WalRecordType::kRedundancy;
  redundancy.file_id = 7;
  redundancy.mode = static_cast<uint8_t>(store::RedundancyMode::kErasure);

  for (const WalRecord* r : {&create, &extend, &cow, &complete, &replicas,
                             &lost, &unlink, &link, &redundancy}) {
    wal.Append(clock, *r);
  }
  EXPECT_EQ(wal.last_seq(), 9u);
  EXPECT_GT(clock.now(), 0);  // durability has a virtual-time cost

  auto replay = wal.ReadForRecovery(clock);
  EXPECT_FALSE(replay.used_checkpoint);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 9u);
  for (size_t i = 0; i < replay.records.size(); ++i) {
    EXPECT_EQ(replay.records[i].seq, i + 1);
  }

  const WalRecord& c = replay.records[0];
  EXPECT_EQ(c.type, WalRecordType::kCreateFile);
  EXPECT_EQ(c.file_id, 7u);
  EXPECT_EQ(c.name, "/round/trip");

  const WalRecord& e = replay.records[1];
  EXPECT_EQ(e.type, WalRecordType::kExtend);
  EXPECT_EQ(e.size, 2 * kChunk);
  ASSERT_EQ(e.placements.size(), 2u);
  EXPECT_EQ(e.placements[0].slot, 0u);
  EXPECT_EQ(e.placements[0].key, Key(7, 0, 0));
  EXPECT_EQ(e.placements[0].replicas, (std::vector<int>{0, 1}));
  EXPECT_EQ(e.placements[1].key, Key(7, 1, 0));
  EXPECT_EQ(e.placements[1].replicas, (std::vector<int>{2, 3}));

  const WalRecord& w = replay.records[2];
  EXPECT_EQ(w.type, WalRecordType::kCowSwap);
  EXPECT_EQ(w.slot, 1u);
  EXPECT_EQ(w.old_key, Key(7, 1, 0));
  EXPECT_EQ(w.key, Key(7, 1, 1));
  EXPECT_EQ(w.replicas, (std::vector<int>{2, 3}));

  const WalRecord& k = replay.records[3];
  EXPECT_EQ(k.type, WalRecordType::kComplete);
  ASSERT_EQ(k.completions.size(), 2u);
  EXPECT_EQ(k.completions[0].key, Key(7, 0, 0));
  EXPECT_TRUE(k.completions[0].has_crc);
  EXPECT_EQ(k.completions[0].crc, 0xdeadbeefu);
  EXPECT_EQ(k.completions[0].frag_crcs,
            (std::vector<uint32_t>{0xa1u, 0xb2u, 0xc3u}));
  EXPECT_EQ(k.completions[1].key, Key(7, 1, 1));
  EXPECT_FALSE(k.completions[1].has_crc);
  EXPECT_TRUE(k.completions[1].frag_crcs.empty());

  EXPECT_EQ(replay.records[4].replicas, (std::vector<int>{1}));
  EXPECT_TRUE(replay.records[5].replicas.empty());  // lost publish survives
  EXPECT_EQ(replay.records[6].type, WalRecordType::kUnlink);
  EXPECT_EQ(replay.records[6].file_id, 7u);
  EXPECT_EQ(replay.records[7].type, WalRecordType::kLink);
  EXPECT_EQ(replay.records[7].file_id, 9u);
  EXPECT_EQ(replay.records[7].src_file, 7u);
  EXPECT_EQ(replay.records[8].type, WalRecordType::kRedundancy);
  EXPECT_EQ(replay.records[8].file_id, 7u);
  EXPECT_EQ(replay.records[8].mode,
            static_cast<uint8_t>(store::RedundancyMode::kErasure));
}

WalRecord UnlinkRecord(uint64_t file_id) {
  WalRecord r;
  r.type = WalRecordType::kUnlink;
  r.file_id = file_id;
  return r;
}

TEST(WalUnit, TornTailCutsOnlyTheLastRecord) {
  WalStore wal(WalConfig());
  sim::VirtualClock clock(0);
  for (uint64_t i = 1; i <= 3; ++i) wal.Append(clock, UnlinkRecord(i));

  wal.TruncateTailBytes(5);  // tear into the third record's frame
  auto replay = wal.ReadForRecovery(clock);
  EXPECT_TRUE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0].file_id, 1u);
  EXPECT_EQ(replay.records[1].file_id, 2u);

  // Reopen truncates the torn tail and continues the sequence after the
  // durable prefix; the log is clean again.
  wal.Reopen();
  wal.Append(clock, UnlinkRecord(44));
  auto again = wal.ReadForRecovery(clock);
  EXPECT_FALSE(again.torn_tail);
  ASSERT_EQ(again.records.size(), 3u);
  EXPECT_EQ(again.records[2].file_id, 44u);
  EXPECT_GT(again.records[2].seq, again.records[1].seq);
}

TEST(WalUnit, CorruptRecordRejectsItselfAndEverythingAfter) {
  // Each kUnlink frame is 8 header + 17 payload = 25 bytes.  A flip 10
  // bytes from the end lands inside record 3; 30 bytes back lands inside
  // record 2 and must also discard the (intact) record 3 behind it — a
  // reader can never trust bytes past a CRC failure.
  for (const auto& [back, survivors] :
       std::vector<std::pair<uint64_t, size_t>>{{10, 2}, {30, 1}}) {
    WalStore wal(WalConfig());
    sim::VirtualClock clock(0);
    for (uint64_t i = 1; i <= 3; ++i) wal.Append(clock, UnlinkRecord(i));
    wal.CorruptLogByte(back, 0x40);
    auto replay = wal.ReadForRecovery(clock);
    EXPECT_TRUE(replay.torn_tail) << "back=" << back;
    ASSERT_EQ(replay.records.size(), survivors) << "back=" << back;
    for (size_t i = 0; i < survivors; ++i) {
      EXPECT_EQ(replay.records[i].file_id, i + 1);
    }
  }
}

TEST(WalUnit, RecordsSpanSegmentsInOrder) {
  WalStore wal(WalConfig());  // 4 KiB segments
  sim::VirtualClock clock(0);
  constexpr uint64_t kRecords = 400;  // ~25 B each: ~10 KiB, >= 3 segments
  for (uint64_t i = 1; i <= kRecords; ++i) wal.Append(clock, UnlinkRecord(i));
  EXPECT_GE(wal.num_segments(), 3u);

  auto replay = wal.ReadForRecovery(clock);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    EXPECT_EQ(replay.records[i].seq, i + 1);
    EXPECT_EQ(replay.records[i].file_id, i + 1);
  }
}

TEST(WalUnit, CheckpointSupersedesCoveredSegments) {
  WalStore wal(WalConfig());
  sim::VirtualClock clock(0);
  for (uint64_t i = 1; i <= 200; ++i) wal.Append(clock, UnlinkRecord(i));
  EXPECT_GE(wal.num_segments(), 2u);

  wal.WriteCheckpoint(clock, "manager state at seq 200", wal.last_seq());
  EXPECT_EQ(wal.checkpoints_written(), 1u);
  EXPECT_EQ(wal.num_segments(), 0u);  // every segment was covered

  for (uint64_t i = 201; i <= 203; ++i) wal.Append(clock, UnlinkRecord(i));
  auto replay = wal.ReadForRecovery(clock);
  EXPECT_TRUE(replay.used_checkpoint);
  EXPECT_EQ(replay.checkpoint, "manager state at seq 200");
  EXPECT_EQ(replay.covered_seq, 200u);
  ASSERT_EQ(replay.records.size(), 3u);  // only the post-checkpoint suffix
  EXPECT_EQ(replay.records[0].seq, 201u);
}

TEST(WalUnit, TornCheckpointFallsBackToPreviousSlot) {
  WalStore wal(WalConfig());
  sim::VirtualClock clock(0);
  for (uint64_t i = 1; i <= 4; ++i) wal.Append(clock, UnlinkRecord(i));
  wal.WriteCheckpoint(clock, "good checkpoint", 4);
  for (uint64_t i = 5; i <= 7; ++i) wal.Append(clock, UnlinkRecord(i));

  wal.CrashAtPoint(CrashPoint::kMidCheckpoint);
  wal.WriteCheckpoint(clock, "newer checkpoint that tears", 7);
  EXPECT_TRUE(wal.crashed());
  EXPECT_EQ(wal.checkpoints_written(), 1u);  // the torn one never counts

  wal.Reopen();
  EXPECT_FALSE(wal.crashed());
  auto replay = wal.ReadForRecovery(clock);
  EXPECT_TRUE(replay.used_checkpoint);
  EXPECT_EQ(replay.checkpoint, "good checkpoint");  // fell back
  EXPECT_EQ(replay.covered_seq, 4u);
  ASSERT_EQ(replay.records.size(), 3u);  // 5..7 were NOT superseded
  EXPECT_EQ(replay.records[0].seq, 5u);
}

TEST(WalUnit, CrashAfterAppendsIsSeededAndDeterministic) {
  // seed == 0: the freeze lands exactly on the n-th append, which itself
  // tears mid-record.
  {
    WalStore wal(WalConfig());
    sim::VirtualClock clock(0);
    wal.CrashAfterAppends(5, 0);
    for (uint64_t i = 1; i <= 4; ++i) wal.Append(clock, UnlinkRecord(i));
    EXPECT_FALSE(wal.crashed());
    wal.Append(clock, UnlinkRecord(5));
    EXPECT_TRUE(wal.crashed());
    auto replay = wal.ReadForRecovery(clock);
    EXPECT_TRUE(replay.torn_tail);  // the triggering append is the tear
    EXPECT_EQ(replay.records.size(), 4u);

    // Post-freeze appends are silent no-ops: the RAM/durable divergence.
    wal.Append(clock, UnlinkRecord(6));
    wal.Append(clock, UnlinkRecord(7));
    EXPECT_EQ(wal.dropped_appends(), 2u);
  }

  // seed != 0 draws the trigger uniformly from [1, n] — the same seed
  // must reproduce the same schedule on a fresh store.
  auto trigger_at = [](uint64_t seed) {
    WalStore wal(WalConfig());
    sim::VirtualClock clock(0);
    wal.CrashAfterAppends(16, seed);
    uint64_t count = 0;
    while (!wal.crashed()) {
      wal.Append(clock, UnlinkRecord(++count));
      EXPECT_LE(count, 16u);
    }
    return count;
  };
  const uint64_t first = trigger_at(0x5eed);
  EXPECT_GE(first, 1u);
  EXPECT_LE(first, 16u);
  EXPECT_EQ(first, trigger_at(0x5eed));
}

// ---------------------------------------------------------------------------
// Store-level harness
// ---------------------------------------------------------------------------

struct Rig {
  net::Cluster cluster;
  store::AggregateStore store;

  explicit Rig(std::function<void(store::StoreConfig&)> tweak = {})
      : cluster(MakeCluster()), store(cluster, MakeStore(std::move(tweak))) {}

  static net::ClusterConfig MakeCluster() {
    net::ClusterConfig cc;
    cc.num_nodes = kBenefactors + 1;
    return cc;
  }
  static store::AggregateStoreConfig MakeStore(
      std::function<void(store::StoreConfig&)> tweak) {
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 2;
    sc.store.wal = true;
    sc.store.wal_segment_bytes = 4_KiB;
    for (int b = 0; b < kBenefactors; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    if (tweak) tweak(sc.store);
    return sc;
  }

  // Always re-fetched: the stub dies with the manager on KillManager.
  store::StoreClient& client() { return store.ClientForNode(0); }
};

std::vector<uint8_t> Pattern(uint64_t tag) {
  std::vector<uint8_t> v(kChunk);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(tag * 131 + i * 7 + (i >> 8));
  }
  return v;
}

Status WriteChunk(store::StoreClient& c, sim::VirtualClock& clock,
                  store::FileId id, uint32_t index,
                  const std::vector<uint8_t>& bytes) {
  Bitmap all(kChunk / c.config().page_bytes);
  all.SetAll();
  return c.WriteChunkPages(clock, id, index, all, bytes);
}

// The bytes every live file must serve, keyed by name.
struct ShadowFile {
  store::FileId id = store::kInvalidFileId;
  std::vector<std::vector<uint8_t>> chunks;
};
using Shadow = std::map<std::string, ShadowFile>;

void ExpectBytes(Rig& rig, sim::VirtualClock& clock, const Shadow& shadow) {
  store::StoreClient& c = rig.client();
  std::vector<uint8_t> buf(kChunk);
  for (const auto& [name, f] : shadow) {
    for (uint32_t i = 0; i < f.chunks.size(); ++i) {
      ASSERT_TRUE(c.ReadChunk(clock, f.id, i, buf).ok())
          << name << " chunk " << i;
      ASSERT_EQ(0, std::memcmp(buf.data(), f.chunks[i].data(), kChunk))
          << name << " chunk " << i;
    }
  }
}

// The cross-layer invariant sweep from store_invariant_test, restated at
// manager/benefactor level (no mount): namespace agreement, placement
// sanity, checksum agreement on every alive stored replica, reservation
// accounting, and no orphans.  `expect_full` demands exactly-R replica
// lists (off while a just-recovered store is still legitimately
// degraded).  Shared handles (checkpoint links) are deduped by key so
// reservation accounting counts each physical chunk once.
void CheckInvariants(Rig& rig, const Shadow& shadow, bool expect_full) {
  sim::VirtualClock clock(0);
  store::Manager& m = rig.store.manager();
  const size_t repl = static_cast<size_t>(m.config().replication);

  std::map<std::string, std::vector<int>> placed;  // key -> replica list
  for (const auto& [name, f] : shadow) {
    auto id = m.LookupFile(clock, name);
    ASSERT_TRUE(id.ok()) << name;
    ASSERT_EQ(*id, f.id) << name;
    auto info = m.Stat(clock, f.id);
    ASSERT_TRUE(info.ok()) << name;
    ASSERT_EQ(info->num_chunks, f.chunks.size()) << name;

    auto locs = m.GetReadLocations(clock, f.id, 0,
                                   static_cast<uint32_t>(f.chunks.size()));
    ASSERT_TRUE(locs.ok()) << name;
    ASSERT_EQ(locs->size(), f.chunks.size()) << name;
    for (const store::ReadLocation& loc : *locs) {
      ASSERT_FALSE(loc.benefactors.empty()) << loc.key.ToString();
      if (expect_full) {
        ASSERT_EQ(loc.benefactors.size(), repl);
      }
      std::set<int> distinct(loc.benefactors.begin(), loc.benefactors.end());
      ASSERT_EQ(distinct.size(), loc.benefactors.size());
      for (int b : loc.benefactors) {
        ASSERT_GE(b, 0);
        ASSERT_LT(b, kBenefactors);
      }
      ASSERT_GE(m.ChunkRefcount(loc.key), 1u);
      uint32_t want = 0;
      if (m.config().integrity() && m.LookupChecksum(loc.key, &want)) {
        for (int b : loc.benefactors) {
          store::Benefactor& ben = rig.store.benefactor(static_cast<size_t>(b));
          uint32_t got = 0;
          if (ben.alive() && ben.StoredContentCrc(loc.key, &got)) {
            ASSERT_EQ(got, want)
                << "divergent bytes for " << loc.key.ToString() << " on " << b;
          }
        }
      }
      auto [it, inserted] = placed.emplace(loc.key.ToString(), loc.benefactors);
      if (!inserted) {
        ASSERT_EQ(it->second, loc.benefactors);
      }
    }
  }

  std::vector<uint64_t> reserved(kBenefactors, 0);
  std::map<std::string, std::set<int>> where;
  for (const auto& [key, list] : placed) {
    for (int b : list) {
      ++reserved[static_cast<size_t>(b)];
      where[key].insert(b);
    }
  }
  for (int b = 0; b < kBenefactors; ++b) {
    store::Benefactor& ben = rig.store.benefactor(static_cast<size_t>(b));
    if (!ben.alive()) continue;
    ASSERT_EQ(ben.bytes_used(), reserved[static_cast<size_t>(b)] * kChunk)
        << "benefactor " << b;
    for (const store::ChunkKey& key : ben.StoredChunkKeys()) {
      auto it = where.find(key.ToString());
      ASSERT_NE(it, where.end())
          << "benefactor " << b << " stores orphan " << key.ToString();
      ASSERT_TRUE(it->second.contains(b))
          << "benefactor " << b << " stores " << key.ToString()
          << " but is not in its replica list";
    }
  }
}

store::FileId MakeFile(Rig& rig, sim::VirtualClock& clock,
                       const std::string& name, uint32_t chunks) {
  store::StoreClient& c = rig.client();
  auto id = c.Create(clock, name);
  EXPECT_TRUE(id.ok()) << name;
  EXPECT_TRUE(c.Fallocate(clock, *id, chunks * kChunk).ok()) << name;
  return *id;
}

// ---------------------------------------------------------------------------
// Crash-point matrix
// ---------------------------------------------------------------------------

TEST(CrashMatrix, MidCompletionBatchAdoptsChecksumsFromReplicas) {
  // The crash freezes the WAL at CompleteWrites entry: the v2 chunk data
  // already landed on every replica, but the batched completion record
  // (the authoritative checksums) died with the crash.  Recovery must
  // notice that all data holders agree on the same write-time checksum
  // and adopt it — the new bytes win; they are never served unverified.
  Rig rig;
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 4;
  const store::FileId id = MakeFile(rig, clock, "/f0", kChunks);

  std::vector<std::vector<uint8_t>> v1, v2;
  for (uint32_t i = 0; i < kChunks; ++i) {
    v1.push_back(Pattern(10 + i));
    v2.push_back(Pattern(20 + i));
  }
  {
    store::StoreClient& c = rig.client();
    std::vector<Bitmap> dirty(kChunks, Bitmap(kChunk / c.config().page_bytes));
    std::vector<store::StoreClient::ChunkWrite> writes(kChunks);
    for (uint32_t i = 0; i < kChunks; ++i) {
      dirty[i].SetAll();
      writes[i].index = i;
      writes[i].dirty = &dirty[i];
      writes[i].image = {v1[i].data(), kChunk};
    }
    ASSERT_TRUE(c.WriteChunks(clock, id, writes).ok());

    rig.store.wal()->CrashAtPoint(CrashPoint::kMidBatch);
    for (uint32_t i = 0; i < kChunks; ++i) {
      writes[i].image = {v2[i].data(), kChunk};
    }
    ASSERT_TRUE(c.WriteChunks(clock, id, writes).ok());  // RAM says success
  }
  ASSERT_TRUE(rig.store.wal()->crashed());
  EXPECT_GT(rig.store.wal()->dropped_appends(), 0u);

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_FALSE(report.torn_tail);  // freeze hit between records, not mid-frame
  EXPECT_EQ(report.chunks_lost, 0u);
  EXPECT_EQ(report.crc_adopted, static_cast<uint64_t>(kChunks));
  EXPECT_EQ(report.files_recovered, 1u);

  Shadow shadow;
  shadow["/f0"] = {id, v2};
  ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow));
  ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, /*expect_full=*/true));
}

TEST(CrashMatrix, MidRepairCommitLeavesRepairRedoable) {
  // A benefactor dies; the repair driver strips it (durably, in
  // PlanRepairs) and copies data to fresh targets, but the WAL freezes at
  // the first CommitRepair — no target publish survives.  Recovery must
  // sweep the never-published target copies as orphans, keep serving from
  // the survivor, and leave the chunk under-replicated so a re-run of the
  // repair driver heals it.
  Rig rig;
  sim::VirtualClock clock(0);
  constexpr uint32_t kChunks = 2;
  const store::FileId id = MakeFile(rig, clock, "/r0", kChunks);
  std::vector<std::vector<uint8_t>> data;
  for (uint32_t i = 0; i < kChunks; ++i) {
    data.push_back(Pattern(40 + i));
    ASSERT_TRUE(WriteChunk(rig.client(), clock, id, i, data.back()).ok());
  }

  store::Manager& m = rig.store.manager();
  auto locs = m.GetReadLocations(clock, id, 0, kChunks);
  ASSERT_TRUE(locs.ok());
  const int victim = (*locs)[0].benefactors[0];
  rig.store.benefactor(static_cast<size_t>(victim)).Kill();
  m.MarkDead(victim);

  rig.store.wal()->CrashAtPoint(CrashPoint::kMidRepairCommit);
  uint64_t lost = 0;
  ASSERT_TRUE(m.RepairReplication(clock, &lost).ok());
  EXPECT_EQ(lost, 0u);
  ASSERT_TRUE(rig.store.wal()->crashed());

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_EQ(report.chunks_lost, 0u);
  EXPECT_GE(report.orphans_deleted, 1u);  // the unpublished target copies

  Shadow shadow;
  shadow["/r0"] = {id, data};
  ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow));  // survivor serves

  // The repair is redoable on the fresh manager: back to full replication.
  uint64_t lost2 = 0;
  ASSERT_TRUE(rig.store.manager().RepairReplication(clock, &lost2).ok());
  EXPECT_EQ(lost2, 0u);
  ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, /*expect_full=*/true));
}

TEST(CrashMatrix, MidCheckpointFallsBackToPreviousCheckpointPlusReplay) {
  Rig rig;
  sim::VirtualClock clock(0);
  const store::FileId id = MakeFile(rig, clock, "/c0", 2);
  const auto v1a = Pattern(50), v1b = Pattern(51), v2a = Pattern(52);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, v1a).ok());
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 1, v1b).ok());

  rig.store.manager().Checkpoint(clock);  // a full checkpoint lands
  EXPECT_EQ(rig.store.wal()->checkpoints_written(), 1u);

  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, v2a).ok());
  rig.store.wal()->CrashAtPoint(CrashPoint::kMidCheckpoint);
  rig.store.manager().Checkpoint(clock);  // tears halfway through the blob
  ASSERT_TRUE(rig.store.wal()->crashed());

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_TRUE(report.used_checkpoint);     // the torn slot was rejected
  EXPECT_GT(report.records_replayed, 0u);  // the v2 write replays on top
  EXPECT_EQ(report.chunks_lost, 0u);

  Shadow shadow;
  shadow["/c0"] = {id, {v2a, v1b}};
  ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow));
  ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, /*expect_full=*/true));
}

TEST(CrashMatrix, MidScrubCrashRecoversConsistently) {
  Rig rig;
  sim::VirtualClock clock(0);
  const store::FileId keep = MakeFile(rig, clock, "/s0", 2);
  const store::FileId gone = MakeFile(rig, clock, "/s1", 1);
  const auto a = Pattern(60), b = Pattern(61), g = Pattern(62);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, keep, 0, a).ok());
  ASSERT_TRUE(WriteChunk(rig.client(), clock, keep, 1, b).ok());
  ASSERT_TRUE(WriteChunk(rig.client(), clock, gone, 0, g).ok());
  ASSERT_TRUE(rig.client().Unlink(clock, gone).ok());

  rig.store.wal()->CrashAtPoint(CrashPoint::kMidScrub);
  rig.store.manager().ScrubOnce(clock);  // freezes between its two passes
  ASSERT_TRUE(rig.store.wal()->crashed());

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_EQ(report.chunks_lost, 0u);
  EXPECT_EQ(report.files_recovered, 1u);  // the unlink was durable

  Shadow shadow;
  shadow["/s0"] = {keep, {a, b}};
  ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow));
  ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, /*expect_full=*/true));
}

TEST(CrashMatrix, PreparedButUnwrittenCowRollsBack) {
  // A COW prepare whose fresh version never received any data (the
  // manager died between handing out the write location and the client's
  // transfer): the durable slot names version v+1 with no checksum and no
  // replica storing anything.  Recovery must roll the slot back to the
  // shared previous version — readers keep the old bytes; nothing is
  // lost.
  Rig rig;
  sim::VirtualClock clock(0);
  const store::FileId id = MakeFile(rig, clock, "/w0", 1);
  const auto old_bytes = Pattern(70);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, old_bytes).ok());

  // Share the chunk with a checkpoint link so the next prepare COWs.
  store::StoreClient& c = rig.client();
  auto ckpt = c.Create(clock, "/w0.ckpt");
  ASSERT_TRUE(ckpt.ok());
  ASSERT_TRUE(c.LinkFileChunks(clock, *ckpt, id).ok());

  auto loc = rig.store.manager().PrepareWrite(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  EXPECT_GT(loc->key.version, 0u);  // it really was a COW prepare

  rig.store.KillManager();  // dies before any data or completion
  auto report = rig.store.RestartManager(clock);
  EXPECT_EQ(report.cow_rolled_back, 1u);
  EXPECT_EQ(report.chunks_lost, 0u);

  Shadow shadow;
  shadow["/w0"] = {id, {old_bytes}};
  shadow["/w0.ckpt"] = {*ckpt, {old_bytes}};
  ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow));
  ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, /*expect_full=*/true));
}

// ---------------------------------------------------------------------------
// Erasure stripes: commit-at-completion crash semantics
// ---------------------------------------------------------------------------

// RS(4,2) crash rig: six benefactors on six nodes, WAL on.
struct EcRig {
  net::Cluster cluster;
  store::AggregateStore store;

  EcRig() : cluster(MakeCluster()), store(cluster, MakeStore()) {}

  static net::ClusterConfig MakeCluster() {
    net::ClusterConfig cc;
    cc.num_nodes = 7;
    return cc;
  }
  static store::AggregateStoreConfig MakeStore() {
    store::AggregateStoreConfig sc;
    sc.store.chunk_bytes = kChunk;
    sc.store.replication = 1;
    sc.store.redundancy = store::RedundancyMode::kErasure;
    sc.store.ec_k = 4;
    sc.store.ec_m = 2;
    sc.store.wal = true;
    sc.store.wal_segment_bytes = 4_KiB;
    for (int b = 0; b < 6; ++b) sc.benefactor_nodes.push_back(b + 1);
    sc.contribution_bytes = 64_MiB;
    sc.manager_node = 1;
    return sc;
  }

  store::StoreClient& client() { return store.ClientForNode(0); }
};

TEST(CrashMatrix, EcStripeTornBetweenEncodeAndCommitRollsBack) {
  // The manager dies between the fragment encode (all six fragments of
  // the fresh COW version already landed on the benefactors) and the
  // stripe's completion record.  An uncommitted stripe could straddle
  // write generations, so recovery must roll the slot back to the
  // previous committed version — the chunk reads its old bytes, never a
  // splice — and the torn generation's fragments die as orphans.
  EcRig rig;
  sim::VirtualClock clock(0);
  auto idr = rig.client().Create(clock, "/ec0");
  ASSERT_TRUE(idr.ok());
  ASSERT_TRUE(rig.client().Fallocate(clock, *idr, kChunk).ok());
  const store::FileId id = *idr;
  const auto old_bytes = Pattern(90);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, old_bytes).ok());

  // Share the stripe with a checkpoint link so the next write COWs.
  auto ckpt = rig.client().Create(clock, "/ec0.ckpt");
  ASSERT_TRUE(ckpt.ok());
  ASSERT_TRUE(rig.client().LinkFileChunks(clock, *ckpt, id).ok());

  auto loc = rig.store.manager().PrepareWrite(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_TRUE(loc->ec);
  EXPECT_GT(loc->key.version, 0u);  // it really was a COW prepare
  ASSERT_EQ(loc->benefactors.size(), 6u);

  // Encode and land every fragment of the new generation by hand; the
  // completion record never happens.
  const auto new_bytes = Pattern(91);
  store::ErasureCodec codec(4, 2);
  const auto frags = codec.Encode(new_bytes);
  for (size_t pos = 0; pos < frags.size(); ++pos) {
    const int bid = loc->benefactors[pos];
    const uint32_t crc = Crc32c(frags[pos].data(), frags[pos].size());
    ASSERT_TRUE(rig.store.benefactor(static_cast<size_t>(bid))
                    .WriteFragment(clock, loc->key, frags[pos], &crc)
                    .ok());
  }

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_EQ(report.cow_rolled_back, 1u);
  EXPECT_EQ(report.chunks_lost, 0u);
  // The rolled-back generation's six fragments die in recovery's own
  // orphan sweep.
  EXPECT_EQ(report.orphans_deleted, 6u);

  std::vector<uint8_t> buf(kChunk);
  ASSERT_TRUE(rig.client().ReadChunk(clock, id, 0, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), old_bytes.data(), kChunk));
  ASSERT_TRUE(rig.client().ReadChunk(clock, *ckpt, 0, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), old_bytes.data(), kChunk));

  // The accounting settled at exactly one stripe — one fragment's
  // reservation per benefactor — with nothing left for a scrub to fix.
  auto scrub = rig.store.manager().ScrubOnce(clock);
  EXPECT_EQ(scrub.orphans_deleted, 0u);
  EXPECT_EQ(scrub.reservation_fixes, 0u);
  const uint64_t frag = rig.store.manager().config().ec_frag_bytes();
  for (size_t b = 0; b < 6; ++b) {
    EXPECT_EQ(rig.store.benefactor(b).bytes_used(), frag)
        << "benefactor " << b;
  }
}

TEST(CrashMatrix, EcRewriteCompletedOnBenefactorsAdoptsFragmentChecksums) {
  // The in-place analog of MidCompletionBatchAdoptsChecksumsFromReplicas:
  // a full-stripe rewrite replaced all six fragments on the benefactors,
  // then the completion record (the authoritative per-fragment checksums)
  // died with the crash.  Every stored fragment carries a write-time
  // checksum and none matches the durable stripe — the new generation is
  // complete, and recovery adopts it rather than destroying it.  The
  // adopted full-image authority must equal the checksum of the bytes the
  // client wrote (it is combined from the data fragments' checksums).
  EcRig rig;
  sim::VirtualClock clock(0);
  auto idr = rig.client().Create(clock, "/ec1");
  ASSERT_TRUE(idr.ok());
  ASSERT_TRUE(rig.client().Fallocate(clock, *idr, kChunk).ok());
  const store::FileId id = *idr;
  const auto v1 = Pattern(92);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, v1).ok());

  rig.store.wal()->CrashAfterAppends(1, 0);  // tear the next completion
  const auto v2 = Pattern(93);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, v2).ok());
  ASSERT_TRUE(rig.store.wal()->crashed());

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.crc_adopted, 1u);
  EXPECT_EQ(report.chunks_lost, 0u);
  EXPECT_EQ(report.replicas_dropped, 0u);

  std::vector<uint8_t> buf(kChunk);
  ASSERT_TRUE(rig.client().ReadChunk(clock, id, 0, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), v2.data(), kChunk));

  auto loc = rig.store.manager().GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  uint32_t auth = 0;
  ASSERT_TRUE(rig.store.manager().LookupChecksum(loc->key, &auth));
  EXPECT_EQ(auth, Crc32c(v2.data(), v2.size()));
}

// ---------------------------------------------------------------------------
// Quarantine ordering regression (log-before-publish)
// ---------------------------------------------------------------------------

TEST(Regression, QuarantineCrashNeverResurrectsTheCorruptReplica) {
  // A read detects a corrupt replica and quarantines it.  The WAL is
  // armed to freeze on the very next append — the quarantine's own
  // publish record, which tears mid-frame.  Because the quarantine logs
  // BEFORE it deletes the replica's data, the recovered store may at
  // worst still name the (now empty) benefactor as sparse — it can never
  // serve the corrupt bytes, and the good replica always survives.
  Rig rig;
  sim::VirtualClock clock(0);
  const store::FileId id = MakeFile(rig, clock, "/q0", 1);

  auto loc = rig.store.manager().GetReadLocation(clock, id, 0);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->benefactors.size(), 2u);
  const int bad = loc->benefactors[0];  // reads try the list in order
  const int good = loc->benefactors[1];

  // Arm write-time bit rot on the first-tried replica only.
  rig.store.benefactor(static_cast<size_t>(bad)).CorruptAfterWrites(1, 0x0b5e);
  const auto data = Pattern(80);
  ASSERT_TRUE(WriteChunk(rig.client(), clock, id, 0, data).ok());
  rig.store.benefactor(static_cast<size_t>(bad)).CorruptAfterWrites(0, 0);
  ASSERT_GT(rig.store.benefactor(static_cast<size_t>(bad)).bitrot_flips(), 0u);

  rig.store.wal()->CrashAfterAppends(1, 0);  // tear the quarantine publish
  std::vector<uint8_t> buf(kChunk);
  ASSERT_TRUE(rig.client().ReadChunk(clock, id, 0, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), data.data(), kChunk));  // failover won
  EXPECT_EQ(rig.client().corrupt_failovers(), 1u);
  ASSERT_TRUE(rig.store.wal()->crashed());

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.chunks_lost, 0u);

  // The good replica must be in the recovered list; the quarantined one
  // (whose data the pre-crash manager already deleted) must not serve.
  auto after = rig.store.manager().GetReadLocation(clock, id, 0);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->benefactors.empty());
  EXPECT_TRUE(std::find(after->benefactors.begin(), after->benefactors.end(),
                        good) != after->benefactors.end());
  ASSERT_TRUE(rig.client().ReadChunk(clock, id, 0, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf.data(), data.data(), kChunk));

  // Heal back to full replication, then the whole sweep must pass.
  uint64_t lost = 0;
  ASSERT_TRUE(rig.store.manager().RepairReplication(clock, &lost).ok());
  EXPECT_EQ(lost, 0u);
  Shadow shadow;
  shadow["/q0"] = {id, {data}};
  ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow));
  ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, /*expect_full=*/true));
}

TEST(Regression, CompletionLogsOnlyDurableChecksumTransitions) {
  // Completions that change nothing durable (no checksum before or
  // after) must not append; setting and erasing the authoritative
  // checksum must, and the erase must survive a crash.
  Rig rig;
  sim::VirtualClock clock(0);
  store::Manager& m = rig.store.manager();
  auto id = m.CreateFile(clock, "/n0");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(m.Fallocate(clock, *id, kChunk).ok());
  auto loc = m.PrepareWrite(clock, *id, 0);
  ASSERT_TRUE(loc.ok());

  WalStore* wal = rig.store.wal();
  const uint64_t base = wal->appends();
  m.CompleteWrite(clock, loc->key, nullptr);  // never had a crc: no-op
  EXPECT_EQ(wal->appends(), base);

  uint32_t crc = 0x1234abcd;
  auto loc2 = m.PrepareWrite(clock, *id, 0);
  ASSERT_TRUE(loc2.ok());
  m.CompleteWrite(clock, loc2->key, &crc);  // crc set: logged
  EXPECT_EQ(wal->appends(), base + 1);

  auto loc3 = m.PrepareWrite(clock, *id, 0);
  ASSERT_TRUE(loc3.ok());
  m.CompleteWrite(clock, loc3->key, nullptr);  // crc ERASED: logged
  EXPECT_EQ(wal->appends(), base + 2);

  rig.store.KillManager();
  auto report = rig.store.RestartManager(clock);
  EXPECT_EQ(report.chunks_lost, 0u);
  uint32_t got = 0;
  EXPECT_FALSE(rig.store.manager().LookupChecksum(loc3->key, &got))
      << "the checksum erase must be durable";
}

// ---------------------------------------------------------------------------
// Seeded randomized kill schedule
// ---------------------------------------------------------------------------

struct InFlight {
  enum Kind { kNone, kCreate, kWrite, kLink, kUnlink } kind = kNone;
  std::string name;     // target file (kLink: the new checkpoint file)
  std::string src;      // kLink: the linked source file
  uint32_t chunks = 0;  // kCreate/kLink: expected chunk count
  uint32_t chunk = 0;   // kWrite: chunk index
  std::vector<uint8_t> old_bytes, new_bytes;  // kWrite
};

// Probe the one op that was in flight when the WAL froze and fold the
// observed outcome back into the shadow.  Acceptable outcomes are the old
// state, the new state, or (for write/unlink targets) lost chunks that
// refuse to read — anything else is a correctness failure.
void ProbeInFlight(Rig& rig, sim::VirtualClock& clock, Shadow& shadow,
                   const InFlight& op) {
  store::Manager& m = rig.store.manager();
  store::StoreClient& c = rig.client();
  std::vector<uint8_t> buf(kChunk);
  switch (op.kind) {
    case InFlight::kNone:
      break;
    case InFlight::kCreate: {
      auto id = m.LookupFile(clock, op.name);
      if (!id.ok()) break;  // the create never became durable
      auto info = m.Stat(clock, *id);
      ASSERT_TRUE(info.ok());
      if (info->num_chunks != op.chunks) {
        // Torn between create and extend: an empty file is the only other
        // durable state.  Drop it to keep the shadow simple.
        ASSERT_EQ(info->num_chunks, 0u) << op.name;
        ASSERT_TRUE(c.Unlink(clock, *id).ok());
        break;
      }
      ShadowFile f;
      f.id = *id;
      for (uint32_t i = 0; i < op.chunks; ++i) {
        auto st = c.ReadChunk(clock, *id, i, buf);
        if (!st.ok()) {  // a lost never-written chunk: drop the file
          ASSERT_TRUE(c.Unlink(clock, *id).ok());
          return;
        }
        ASSERT_TRUE(std::all_of(buf.begin(), buf.end(),
                                [](uint8_t v) { return v == 0; }))
            << op.name << " chunk " << i << " has bytes before any write";
        f.chunks.emplace_back(buf);  // sparse chunks read zeros
      }
      shadow[op.name] = std::move(f);
      break;
    }
    case InFlight::kLink: {
      auto id = m.LookupFile(clock, op.name);
      if (!id.ok()) break;  // create or link never became durable
      auto info = m.Stat(clock, *id);
      ASSERT_TRUE(info.ok());
      if (info->num_chunks == op.chunks) {
        // The link was durable: it serves the source's committed bytes.
        ASSERT_TRUE(shadow.contains(op.src));
        shadow[op.name] = {*id, shadow[op.src].chunks};
      } else {
        ASSERT_EQ(info->num_chunks, 0u) << op.name;
        ASSERT_TRUE(c.Unlink(clock, *id).ok());
      }
      break;
    }
    case InFlight::kWrite: {
      auto it = shadow.find(op.name);
      ASSERT_NE(it, shadow.end());
      auto st = c.ReadChunk(clock, it->second.id, op.chunk, buf);
      if (!st.ok()) {
        // The in-flight chunk came back with no recoverable replica:
        // surfaced as lost, never as wrong bytes.  Drop the file.
        ASSERT_TRUE(c.Unlink(clock, it->second.id).ok());
        shadow.erase(it);
        break;
      }
      const bool is_old =
          std::memcmp(buf.data(), op.old_bytes.data(), kChunk) == 0;
      const bool is_new =
          std::memcmp(buf.data(), op.new_bytes.data(), kChunk) == 0;
      ASSERT_TRUE(is_old || is_new)
          << op.name << " chunk " << op.chunk
          << " recovered to bytes that are neither the old nor new write";
      it->second.chunks[op.chunk] = is_new ? op.new_bytes : op.old_bytes;
      break;
    }
    case InFlight::kUnlink: {
      auto id = m.LookupFile(clock, op.name);
      if (id.ok()) {
        // Torn unlink: the file survives durably but the pre-crash manager
        // already freed its data — chunks either read the committed bytes
        // or are lost.  Either way, finish the unlink.
        const auto& f = shadow.find(op.name)->second;
        for (uint32_t i = 0; i < f.chunks.size(); ++i) {
          auto st = c.ReadChunk(clock, *id, i, buf);
          if (st.ok()) {
            ASSERT_EQ(0, std::memcmp(buf.data(), f.chunks[i].data(), kChunk))
                << op.name << " chunk " << i;
          }
        }
        ASSERT_TRUE(c.Unlink(clock, *id).ok());
      }
      shadow.erase(op.name);
      break;
    }
  }
}

void RunKillSchedule(uint64_t seed) {
  Rig rig([](store::StoreConfig& s) { s.meta_shards = 2; });
  sim::VirtualClock clock(0);
  Xoshiro256 rng(seed);
  Shadow shadow;
  uint64_t next_name = 0;
  uint64_t crashes = 0;
  constexpr int kOps = 120;
  constexpr size_t kMaxFiles = 4;
  constexpr uint32_t kMaxChunks = 3;

  auto arm = [&] {
    rig.store.wal()->CrashAfterAppends(6 + rng.NextBelow(25), rng.Next());
  };
  auto pick = [&]() -> std::string {
    auto it = shadow.begin();
    std::advance(it, static_cast<long>(rng.NextBelow(shadow.size())));
    return it->first;
  };

  arm();
  for (int op = 0; op < kOps; ++op) {
    InFlight fl;
    const uint64_t dice = rng.NextBelow(100);
    if (dice < 20 || shadow.empty()) {
      if (shadow.size() < kMaxFiles) {
        fl.kind = InFlight::kCreate;
        fl.name = "/k" + std::to_string(next_name++);
        fl.chunks = 1 + static_cast<uint32_t>(rng.NextBelow(kMaxChunks));
        store::StoreClient& c = rig.client();
        auto id = c.Create(clock, fl.name);
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(c.Fallocate(clock, *id, fl.chunks * kChunk).ok());
        if (!rig.store.wal()->crashed()) {
          ShadowFile f;
          f.id = *id;
          f.chunks.assign(fl.chunks, std::vector<uint8_t>(kChunk, 0));
          shadow[fl.name] = std::move(f);
        }
      }
    } else if (dice < 60) {
      fl.kind = InFlight::kWrite;
      fl.name = pick();
      ShadowFile& f = shadow[fl.name];
      fl.chunk = static_cast<uint32_t>(rng.NextBelow(f.chunks.size()));
      fl.old_bytes = f.chunks[fl.chunk];
      fl.new_bytes = Pattern(rng.Next());
      ASSERT_TRUE(
          WriteChunk(rig.client(), clock, f.id, fl.chunk, fl.new_bytes).ok());
      if (!rig.store.wal()->crashed()) f.chunks[fl.chunk] = fl.new_bytes;
    } else if (dice < 70) {
      // Checkpoint-link a file: shares every chunk handle, so later
      // writes to the source COW and crashes can land mid-swap.
      if (shadow.size() < kMaxFiles) {
        fl.kind = InFlight::kLink;
        fl.src = pick();
        fl.name = fl.src + ".l" + std::to_string(next_name++);
        fl.chunks = static_cast<uint32_t>(shadow[fl.src].chunks.size());
        store::StoreClient& c = rig.client();
        auto id = c.Create(clock, fl.name);
        ASSERT_TRUE(id.ok());
        ASSERT_TRUE(c.LinkFileChunks(clock, *id, shadow[fl.src].id).ok());
        if (!rig.store.wal()->crashed()) {
          shadow[fl.name] = {*id, shadow[fl.src].chunks};
        }
      }
    } else if (dice < 85) {
      const std::string name = pick();
      ShadowFile& f = shadow[name];
      const uint32_t i = static_cast<uint32_t>(rng.NextBelow(f.chunks.size()));
      std::vector<uint8_t> buf(kChunk);
      ASSERT_TRUE(rig.client().ReadChunk(clock, f.id, i, buf).ok());
      ASSERT_EQ(0, std::memcmp(buf.data(), f.chunks[i].data(), kChunk))
          << name << " chunk " << i << " at op " << op;
    } else {
      fl.kind = InFlight::kUnlink;
      fl.name = pick();
      ASSERT_TRUE(rig.client().Unlink(clock, shadow[fl.name].id).ok());
      if (!rig.store.wal()->crashed()) shadow.erase(fl.name);
    }

    if (op % 25 == 24 && !rig.store.wal()->crashed()) {
      rig.store.manager().Checkpoint(clock);
    }

    if (rig.store.wal()->crashed()) {
      ++crashes;
      // The shadow still reflects the last op completed BEFORE the freeze
      // (the crashing op's shadow update was skipped above); `fl` is the
      // single uncertain op.
      rig.store.KillManager();
      rig.store.RestartManager(clock);
      ASSERT_NO_FATAL_FAILURE(ProbeInFlight(rig, clock, shadow, fl))
          << "seed " << seed << " op " << op;
      // Every OTHER file must come back exactly; divergent replicas the
      // reconciliation dropped leave some chunks under-replicated, so
      // heal first, then demand the FULL invariant set.
      uint64_t lost = 0;
      ASSERT_TRUE(rig.store.manager().RepairReplication(clock, &lost).ok());
      EXPECT_EQ(lost, 0u) << "seed " << seed << " op " << op;
      ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow))
          << "seed " << seed << " op " << op;
      ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, true))
          << "seed " << seed << " op " << op;
      arm();
    } else if (op % 10 == 9) {
      ASSERT_NO_FATAL_FAILURE(ExpectBytes(rig, clock, shadow)) << "op " << op;
      ASSERT_NO_FATAL_FAILURE(CheckInvariants(rig, shadow, true))
          << "op " << op;
    }
  }

  EXPECT_GE(crashes, 2u) << "seed " << seed
                         << ": the kill schedule never actually fired";

  // Teardown: the store must drain to empty through the fresh manager.
  rig.store.wal()->CrashAfterAppends(0, 0);  // disarm
  while (!shadow.empty()) {
    ASSERT_TRUE(rig.client().Unlink(clock, shadow.begin()->second.id).ok());
    shadow.erase(shadow.begin());
  }
  for (int b = 0; b < kBenefactors; ++b) {
    store::Benefactor& ben = rig.store.benefactor(static_cast<size_t>(b));
    EXPECT_EQ(ben.num_chunks(), 0u) << b;
    EXPECT_EQ(ben.bytes_used(), 0u) << b;
  }
}

TEST(CrashSchedule, SeededRandomKillsRecoverEveryTime) {
  RunKillSchedule(0x5eed0001);
}
TEST(CrashSchedule, SeededRandomKillsRecoverEveryTimeSecondSeed) {
  RunKillSchedule(0xfeedbee5);
}
TEST(CrashSchedule, SeededRandomKillsRecoverEveryTimeThirdSeed) {
  RunKillSchedule(42);
}

// ---------------------------------------------------------------------------
// wal=off identity
// ---------------------------------------------------------------------------

struct IdentityRun {
  int64_t final_ns = 0;
  uint64_t appends = 0;
  std::map<std::string, std::vector<std::vector<uint8_t>>> bytes;
};

IdentityRun RunIdentitySequence(bool wal_on) {
  IdentityRun out;
  Rig rig([wal_on](store::StoreConfig& s) { s.wal = wal_on; });
  EXPECT_EQ(rig.store.wal() != nullptr, wal_on);
  sim::VirtualClock clock(0);
  store::StoreClient& c = rig.client();
  Xoshiro256 rng(0x1de27171);

  std::map<std::string, store::FileId> ids;
  std::map<std::string, std::vector<std::vector<uint8_t>>> files;
  for (int f = 0; f < 3; ++f) {
    const std::string name = "/id" + std::to_string(f);
    auto id = c.Create(clock, name);
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(c.Fallocate(clock, *id, 2 * kChunk).ok());
    ids[name] = *id;
    files[name] = {Pattern(rng.Next()), Pattern(rng.Next())};
    for (uint32_t i = 0; i < 2; ++i) {
      EXPECT_TRUE(WriteChunk(c, clock, *id, i, files[name][i]).ok());
    }
  }
  // A link + COW overwrite + an unlink, so the sequence touches every
  // record-producing path.
  auto link = c.Create(clock, "/id0.ckpt");
  EXPECT_TRUE(link.ok());
  EXPECT_TRUE(c.LinkFileChunks(clock, *link, ids["/id0"]).ok());
  ids["/id0.ckpt"] = *link;
  files["/id0.ckpt"] = files["/id0"];
  files["/id0"][0] = Pattern(rng.Next());
  EXPECT_TRUE(WriteChunk(c, clock, ids["/id0"], 0, files["/id0"][0]).ok());
  EXPECT_TRUE(c.Unlink(clock, ids["/id2"]).ok());
  ids.erase("/id2");
  files.erase("/id2");

  std::vector<uint8_t> buf(kChunk);
  for (const auto& [name, chunks] : files) {
    auto& got = out.bytes[name];
    for (uint32_t i = 0; i < chunks.size(); ++i) {
      EXPECT_TRUE(c.ReadChunk(clock, ids[name], i, buf).ok());
      got.emplace_back(buf);
    }
  }
  out.final_ns = clock.now();
  out.appends = wal_on ? rig.store.wal()->appends() : 0;
  return out;
}

TEST(WalOffIdentity, WalOffMatchesWalOnBytesAndCostsStrictlyLess) {
  const IdentityRun off = RunIdentitySequence(false);
  const IdentityRun off2 = RunIdentitySequence(false);
  const IdentityRun on = RunIdentitySequence(true);

  // wal=off is deterministic and bit-identical to itself...
  EXPECT_EQ(off.final_ns, off2.final_ns);
  EXPECT_EQ(off.bytes, off2.bytes);
  // ...and the WAL changes durability cost, never content.
  EXPECT_EQ(off.bytes, on.bytes);
  EXPECT_GT(on.appends, 0u);
  EXPECT_GT(on.final_ns, off.final_ns)
      << "metadata durability must have a nonzero virtual-time cost";
}

}  // namespace
}  // namespace nvm

// Concurrency stress tests: many clients across many nodes hammering the
// store/cache/pager simultaneously, full-scale (128-rank) collectives, and
// mixed workloads sharing one aggregate store.  These chase interleaving
// bugs the deterministic tests cannot reach.
#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.hpp"
#include "minimpi/comm.hpp"
#include "nvmalloc/runtime.hpp"
#include "stress_env.hpp"
#include "workloads/testbed.hpp"

namespace nvm {
namespace {

constexpr uint64_t kChunk = 64_KiB;

TEST(StressTest, ManyClientsManyNodesMixedOps) {
  workloads::TestbedOptions to;
  to.compute_nodes = 8;
  to.benefactors = 8;
  workloads::Testbed tb(to);

  constexpr int kRanks = 32;
  auto placement = tb.Placement(4, 8);
  std::atomic<int> failures{0};
  tb.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    auto& runtime = tb.runtime(env.node_id);
    Xoshiro256 rng(static_cast<uint64_t>(env.rank) + 100);
    // Each rank owns a private region plus the node-shared one.
    auto mine = runtime.SsdMalloc(4 * kChunk);
    auto shared = runtime.SsdMalloc(
        8 * kChunk, {.shared = true, .shared_name = "stress"});
    if (!mine.ok() || !shared.ok()) {
      failures.fetch_add(1);
      return;
    }
    std::vector<uint8_t> buf(4096);
    std::vector<uint8_t> mirror(4 * kChunk, 0);
    const int ops = StressIters(120);
    for (int op = 0; op < ops; ++op) {
      const uint64_t off = rng.NextBelow(4 * kChunk - buf.size());
      switch (rng.NextBelow(4)) {
        case 0: {
          for (auto& b : buf) b = static_cast<uint8_t>(rng.Next());
          if (!(*mine)->Write(off, buf).ok()) failures.fetch_add(1);
          std::copy(buf.begin(), buf.end(), mirror.begin() + off);
          break;
        }
        case 1: {
          std::vector<uint8_t> got(buf.size());
          if (!(*mine)->Read(off, got).ok()) {
            failures.fetch_add(1);
            break;
          }
          if (!std::equal(got.begin(), got.end(), mirror.begin() + off)) {
            failures.fetch_add(1);
          }
          break;
        }
        case 2: {
          // Shared-region traffic: disjoint per-rank stripes.
          const uint64_t stripe =
              static_cast<uint64_t>(env.rank % 8) * kChunk;
          for (auto& b : buf) b = static_cast<uint8_t>(env.rank);
          if (!(*shared)->Write(stripe + (off % (kChunk - buf.size())), buf)
                   .ok()) {
            failures.fetch_add(1);
          }
          break;
        }
        case 3: {
          if (!(*mine)->Sync().ok()) failures.fetch_add(1);
          break;
        }
      }
    }
    // Final consistency sweep of the private region.
    std::vector<uint8_t> all(4 * kChunk);
    if (!(*mine)->Read(0, all).ok() || all != mirror) failures.fetch_add(1);
    if (!runtime.SsdFree(*mine).ok()) failures.fetch_add(1);
    if (!runtime.SsdFree(*shared).ok()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
  (void)kRanks;
}

TEST(StressTest, FullScaleCollectives) {
  // The paper's full 128-core scale: 8 procs on each of 16 nodes.
  net::ClusterConfig cc;
  cc.num_nodes = 16;
  net::Cluster cluster(cc);
  auto placement = cluster.BlockPlacement(8, 16);
  minimpi::Comm comm(cluster, placement);

  std::atomic<int> bad{0};
  const int64_t makespan =
      cluster.RunProcesses(placement, [&](net::ProcessEnv& env) {
        auto mpi = comm.rank_handle(env.rank);
        // Bcast a payload, allreduce a checksum, allgather ranks.
        std::vector<uint64_t> payload(4096);
        if (env.rank == 0) {
          for (size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3;
        }
        mpi.Bcast({reinterpret_cast<uint8_t*>(payload.data()),
                   payload.size() * 8},
                  0);
        uint64_t sum = 0;
        for (uint64_t v : payload) sum += v;
        if (sum != 4096ull * 4095 / 2 * 3) bad.fetch_add(1);

        const int64_t total = mpi.AllreduceSum<int64_t>(env.rank);
        if (total != 127 * 128 / 2) bad.fetch_add(1);

        std::vector<int32_t> everyone(128);
        const int32_t me = env.rank;
        mpi.Allgather({reinterpret_cast<const uint8_t*>(&me), 4},
                      {reinterpret_cast<uint8_t*>(everyone.data()),
                       everyone.size() * 4});
        for (int r = 0; r < 128; ++r) {
          if (everyone[static_cast<size_t>(r)] != r) bad.fetch_add(1);
        }
        mpi.Barrier();
      });
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GT(makespan, 0);
}

TEST(StressTest, CheckpointsWhileOthersCompute) {
  // One rank checkpoints a shared variable while siblings keep reading it
  // (barrier-free readers of a read-only region are legal alongside
  // ssdcheckpoint, which only Syncs and links).
  workloads::TestbedOptions to;
  to.compute_nodes = 2;
  to.benefactors = 2;
  workloads::Testbed tb(to);
  auto& runtime = tb.runtime(0);
  auto region = runtime.SsdMalloc(8 * kChunk,
                                  {.shared = true, .shared_name = "live"});
  ASSERT_TRUE(region.ok());
  std::vector<uint8_t> image(8 * kChunk);
  Xoshiro256 rng(7);
  for (auto& b : image) b = static_cast<uint8_t>(rng.Next());
  ASSERT_TRUE((*region)->Write(0, image).ok());

  std::atomic<int> failures{0};
  auto placement = tb.Placement(4, 1);
  tb.cluster().RunProcesses(placement, [&](net::ProcessEnv& env) {
    if (env.rank == 0) {
      for (int t = 0; t < 5; ++t) {
        CheckpointSpec spec;
        spec.nvm.push_back(*region);
        if (!runtime.SsdCheckpoint(spec, "/ckpt/live_t" + std::to_string(t))
                 .ok()) {
          failures.fetch_add(1);
        }
      }
    } else {
      std::vector<uint8_t> buf(4096);
      Xoshiro256 r2(static_cast<uint64_t>(env.rank));
      const int ops = StressIters(200);
      for (int op = 0; op < ops; ++op) {
        const uint64_t off = r2.NextBelow(8 * kChunk - buf.size());
        if (!(*region)->Read(off, buf).ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!std::equal(buf.begin(), buf.end(), image.begin() + off)) {
          failures.fetch_add(1);
        }
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);

  // Every checkpoint restores the same (unmodified) image.
  for (int t = 0; t < 5; ++t) {
    auto fresh = runtime.SsdMalloc(8 * kChunk);
    ASSERT_TRUE(fresh.ok());
    RestoreSpec restore;
    restore.nvm.push_back(*fresh);
    ASSERT_TRUE(
        runtime.SsdRestart("/ckpt/live_t" + std::to_string(t), restore).ok());
    std::vector<uint8_t> got(8 * kChunk);
    ASSERT_TRUE((*fresh)->Read(0, got).ok());
    EXPECT_EQ(got, image) << "checkpoint t" << t;
    ASSERT_TRUE(runtime.SsdFree(*fresh).ok());
  }
}

}  // namespace
}  // namespace nvm
